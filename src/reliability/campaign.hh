/**
 * @file
 * Statistical fault-injection campaigns: N independent single-bit flips,
 * uniformly sampled over (structure bit, execution cycle), fanned out over
 * a worker pool.  Per-injection seeds are derived from (campaign seed,
 * injection index), so results are bit-identical regardless of the number
 * of worker threads.
 */

#ifndef GPR_RELIABILITY_CAMPAIGN_HH
#define GPR_RELIABILITY_CAMPAIGN_HH

#include <cstdint>
#include <vector>

#include "reliability/fault_injector.hh"
#include "reliability/sampling.hh"
#include "sim/stats.hh"

namespace gpr {

struct CampaignConfig
{
    SamplePlan plan = paperSamplePlan();
    std::uint64_t seed = 0xC0FFEE;
    /** Parallel workers; 0 selects std::thread::hardware_concurrency().
     *  Workers run as tasks on the process-wide shared pool, so
     *  back-to-back or concurrent campaigns reuse one set of threads. */
    unsigned numThreads = 0;
    /** Keep every per-injection record (memory-heavy for big campaigns). */
    bool keepRecords = false;
    /** Checkpoint budget for the checkpoint-restore injection engine;
     *  0 runs every injection from scratch (legacy engine, identical
     *  counts).  The budget is *distributed* by `placement` — see the
     *  README's checkpoint engine v2 migration note. */
    unsigned checkpoints = kDefaultCheckpoints;
    /** How the checkpoint budget is placed over the golden run. */
    CheckpointPlacement placement = CheckpointPlacement::FaultAware;
    /** Fault shape every injection of the campaign carries (target,
     *  bit and cycle stay per-injection samples).  Default = transient
     *  single-bit, the pre-redesign model bit-for-bit. */
    FaultShape shape;
};

struct CampaignResult
{
    TargetStructure structure = TargetStructure::VectorRegisterFile;
    std::size_t injections = 0;
    std::size_t masked = 0;
    std::size_t sdc = 0;
    std::size_t due = 0;

    /** Golden-run performance & occupancy statistics. */
    SimStats goldenStats;

    /**
     * Aggregate worker-seconds spent on the injection runs (summed busy
     * time across workers — equals wall-clock for a single-threaded
     * campaign, and never double-counts when campaigns share a pool).
     */
    double wallSeconds = 0.0;

    /**
     * Aggregate per-phase engine breakdown (prefilter / restore / replay
     * / hash, plus shortcut hit counts).  Each worker accumulates into
     * its own injector and the partials merge under the result mutex at
     * join — never into shared state from inside the injection loop
     * (lint rule D4 / the TSan CI job).  Hit *counts* are a pure
     * function of the injection set, so they are bit-identical at any
     * worker count; the seconds are wall-clock diagnostics.
     */
    InjectionPhaseStats phaseStats;

    /** Confidence level the margins below are quoted at. */
    double confidence = 0.99;

    std::vector<InjectionResult> records; ///< only if keepRecords

    double
    avf() const
    {
        return injections ? static_cast<double>(sdc + due) /
                                static_cast<double>(injections)
                          : 0.0;
    }
    double
    sdcRate() const
    {
        return injections ? static_cast<double>(sdc) /
                                static_cast<double>(injections)
                          : 0.0;
    }
    double
    dueRate() const
    {
        return injections ? static_cast<double>(due) /
                                static_cast<double>(injections)
                          : 0.0;
    }

    /**
     * Error margin around the measured AVF: the Wilson-interval
     * half-width, which stays meaningful (non-zero) even when the
     * campaign observes zero or all failures, unlike the Wald margin.
     */
    double
    errorMargin() const
    {
        if (injections == 0)
            return 0.0;
        return wilson().width() / 2.0;
    }

    /** Wilson interval around a rate with @p successes outcomes (the
     *  vacuous [0,1] when the campaign ran no injections). */
    Interval
    rateInterval(std::size_t successes) const
    {
        return wilsonInterval(successes, injections, confidence);
    }

    Interval avfInterval() const { return rateInterval(sdc + due); }

    /** Historical name for avfInterval(). */
    Interval wilson() const { return avfInterval(); }
    Interval sdcInterval() const { return rateInterval(sdc); }
    Interval dueInterval() const { return rateInterval(due); }

    /** Largest CI half-width across the three reported rates — the
     *  same statistic the sequential stopping rule tests, so what an
     *  adaptive campaign reports is exactly what it stopped on. */
    double
    achievedMargin() const
    {
        return maxRateHalfWidth(sdc, due, injections, confidence);
    }
};

/**
 * The campaign seeding scheme, shared by every execution engine
 * (standalone campaigns and orchestrated study shards): injection
 * @p index of a campaign seeded with @p campaign_seed draws its fault
 * from Rng(deriveSeed(campaign_seed, index)).  Keeping this in one
 * place is what makes campaign outcomes a pure function of
 * (seed, index) — independent of threads, shards, and resume history.
 */
inline InjectionResult
runIndexedInjection(FaultInjector& injector, TargetStructure structure,
                    std::uint64_t campaign_seed, std::uint64_t index,
                    const FaultShape& shape = {})
{
    Rng rng(deriveSeed(campaign_seed, index));
    return injector.injectRandom(structure, rng, shape);
}

/**
 * Run a statistical FI campaign for one (GPU, workload, structure)
 * triple.  Throws FatalError on configuration errors; individual
 * abnormal outcomes are classified, never thrown.
 */
CampaignResult runCampaign(const GpuConfig& config,
                           const WorkloadInstance& instance,
                           TargetStructure structure,
                           const CampaignConfig& cc = {});

} // namespace gpr

#endif // GPR_RELIABILITY_CAMPAIGN_HH
