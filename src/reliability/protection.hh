/**
 * @file
 * What-if models for hardware error-protection schemes.
 *
 * Section III of the paper motivates EPF as the metric an architect uses
 * to "quantify the effectiveness of a hardware based error protection
 * technique, which can be applied to their designs (if needed) along with
 * a performance cost".  This module provides that what-if: given a
 * campaign's SDC/DUE split, apply a protection scheme to the structure
 * and recompute the failure rates and the performance cost.
 */

#ifndef GPR_RELIABILITY_PROTECTION_HH
#define GPR_RELIABILITY_PROTECTION_HH

#include <string>
#include <vector>

namespace gpr {

/**
 * A protection scheme transforms the (sdc, due) rates of a structure and
 * taxes performance.  Factors are residual fractions in [0, 1].
 */
struct ProtectionScheme
{
    std::string name;

    /** Fraction of previously-SDC faults still causing SDC. */
    double sdcResidual = 1.0;
    /** Fraction of previously-SDC faults converted to DUE (detection). */
    double sdcToDue = 0.0;
    /** Fraction of previously-DUE faults still causing DUE. */
    double dueResidual = 1.0;

    /** Relative execution-time overhead (e.g. 0.03 = 3 % slower). */
    double perfOverhead = 0.0;
};

/** No protection: identity transform. */
ProtectionScheme unprotectedScheme();

/**
 * Parity per 32-bit word: single-bit errors are detected, not corrected —
 * SDCs become DUEs; DUEs stay DUEs.  ~1 % performance cost.
 */
ProtectionScheme parityScheme();

/**
 * SECDED ECC per 32-bit word: single-bit errors corrected.  The single-bit
 * fault model is fully covered; a small residual accounts for scrub-window
 * and pipeline-bypass holes.  ~3 % performance cost (read-modify-write
 * and latency on the protected array).
 */
ProtectionScheme eccSecdedScheme();

/** All built-in schemes (for sweeps). */
const std::vector<ProtectionScheme>& builtinProtectionSchemes();

/** SDC/DUE rates of one structure before/after protection. */
struct ProtectedRates
{
    double sdc = 0.0;
    double due = 0.0;

    double avf() const { return sdc + due; }
};

/** Apply @p scheme to measured @p sdc / @p due rates. */
ProtectedRates applyProtection(const ProtectionScheme& scheme, double sdc,
                               double due);

} // namespace gpr

#endif // GPR_RELIABILITY_PROTECTION_HH
