/**
 * @file
 * Storage access profiling — the "resource occupancy / usage" analysis
 * axis from Section I of the paper.
 *
 * One instrumented run counts reads and writes per physical unit of each
 * registered structure (32-bit words for storage, logical control units
 * for the predicate file / SIMT stack) and summarises how concentrated
 * the traffic is.  High concentration (e.g. a histogram's hot bins, a
 * reduction's low tree slots) explains why AVF is not simply
 * proportional to occupancy.
 */

#ifndef GPR_RELIABILITY_ACCESS_PROFILE_HH
#define GPR_RELIABILITY_ACCESS_PROFILE_HH

#include <cstdint>
#include <vector>

#include "arch/gpu_config.hh"
#include "sim/observer.hh"
#include "sim/structure_registry.hh"
#include "workloads/workload.hh"

namespace gpr {

/** Traffic summary of one structure over one kernel run. */
struct AccessSummary
{
    TargetStructure structure = TargetStructure::VectorRegisterFile;
    std::uint64_t totalWords = 0;    ///< structure size in units (chip-wide)
    std::uint64_t touchedWords = 0;  ///< units with >= 1 access
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    /** Fraction of all accesses landing in the busiest 10 % of touched
     *  units (0.1 = perfectly even, 1.0 = fully concentrated). */
    double top10Share = 0.0;

    double
    touchedFraction() const
    {
        return totalWords ? static_cast<double>(touchedWords) /
                                static_cast<double>(totalWords)
                          : 0.0;
    }
    double
    readsPerWrite() const
    {
        return writes ? static_cast<double>(reads) /
                            static_cast<double>(writes)
                      : 0.0;
    }
};

/** SimObserver counting per-unit accesses. */
class AccessProfiler : public SimObserver
{
  public:
    explicit AccessProfiler(const GpuConfig& config);

    void onRead(TargetStructure structure, SmId sm, std::uint32_t word,
                Word value, Cycle cycle) override;
    void onWrite(TargetStructure structure, SmId sm, std::uint32_t word,
                 Cycle cycle) override;

    /** Summarise the traffic recorded so far for @p structure. */
    AccessSummary summary(TargetStructure structure) const;

  private:
    struct Counters
    {
        std::vector<std::uint32_t> reads;
        std::vector<std::uint32_t> writes;
        std::uint32_t unitsPerSm = 0;
    };

    Counters& counters(TargetStructure structure);
    const Counters& counters(TargetStructure structure) const;

    /** One counter set per registered structure, in registry order. */
    std::vector<Counters> counters_;
};

/** Run one instrumented execution and return a summary per registered
 *  structure (registry order). */
struct AccessProfileResult
{
    std::vector<AccessSummary> structures;

    /** Lookup by id; throws FatalError on an unregistered structure. */
    const AccessSummary& forStructure(TargetStructure s) const;
};

AccessProfileResult profileAccesses(const GpuConfig& config,
                                    const WorkloadInstance& instance);

} // namespace gpr

#endif // GPR_RELIABILITY_ACCESS_PROFILE_HH
