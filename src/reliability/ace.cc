#include "reliability/ace.hh"

// gpr:lint-allow-file(D1): timing whitelist — steady_clock reads feed
// only the analysisSeconds diagnostic, never ACE counts or hashes.

#include <chrono>

#include "common/logging.hh"
#include "sim/gpu.hh"

namespace gpr {

const AceStructureResult&
AceResult::forStructure(TargetStructure s) const
{
    return structureEntry(structures, s, "AceResult");
}

AceAnalyzer::AceAnalyzer(const GpuConfig& config, AceMode mode)
    : mode_(mode)
{
    trackers_.resize(kNumTargetStructures);
    for (const StructureSpec& spec : structureRegistry()) {
        StructureTracker& t = trackers_[static_cast<std::size_t>(spec.id)];
        const std::uint64_t units_per_sm = spec.aceUnitsPerSm(config);
        if (units_per_sm == 0)
            continue; // structure absent on this chip
        t.unitsPerSm = static_cast<std::uint32_t>(units_per_sm);
        // Chip-scoped structures (the shared L2) report all events with
        // sm == 0, so a single instance's worth of units suffices.
        const std::uint64_t instances =
            spec.scope == StructureScope::PerSm ? config.numSms : 1;
        t.units.resize(instances * units_per_sm);
        if (spec.aceUnitBits) {
            t.unitBits.resize(t.unitsPerSm);
            for (std::uint32_t u = 0; u < t.unitsPerSm; ++u)
                t.unitBits[u] = spec.aceUnitBits(config, u);
        }
    }
}

AceAnalyzer::StructureTracker&
AceAnalyzer::tracker(TargetStructure structure)
{
    const auto index = static_cast<std::size_t>(structure);
    if (index >= trackers_.size()) {
        fatal("ACE event for unregistered structure id ",
              static_cast<unsigned>(structure));
    }
    return trackers_[index];
}

const AceAnalyzer::StructureTracker&
AceAnalyzer::tracker(TargetStructure structure) const
{
    return const_cast<AceAnalyzer*>(this)->tracker(structure);
}

void
AceAnalyzer::commit(StructureTracker& t, UnitState& u, Cycle upto)
{
    if (!u.allocated || !u.readSinceWrite)
        return;
    const Cycle end = mode_ == AceMode::Standard ? u.lastRead : upto;
    if (end > u.write) {
        std::uint64_t weight = 1;
        if (!t.unitBits.empty()) {
            // Nonuniform units: weight the interval by the unit's bit
            // count so the structure AVF bounds bit-uniform injection.
            const auto index =
                static_cast<std::size_t>(&u - t.units.data());
            weight = t.unitBits[index % t.unitsPerSm];
        }
        t.aceCycles += (end - u.write) * weight;
    }
}

void
AceAnalyzer::onRead(TargetStructure structure, SmId sm, std::uint32_t word,
                    Word, Cycle cycle)
{
    StructureTracker& t = tracker(structure);
    UnitState& u = t.units[std::uint64_t{sm} * t.unitsPerSm + word];
    u.lastRead = cycle;
    u.readSinceWrite = true;
}

void
AceAnalyzer::onWrite(TargetStructure structure, SmId sm, std::uint32_t word,
                     Cycle cycle)
{
    StructureTracker& t = tracker(structure);
    UnitState& u = t.units[std::uint64_t{sm} * t.unitsPerSm + word];
    commit(t, u, cycle);
    u.write = cycle;
    u.readSinceWrite = false;
}

void
AceAnalyzer::onAlloc(TargetStructure structure, SmId sm,
                     std::uint32_t first, std::uint32_t count, Cycle cycle)
{
    StructureTracker& t = tracker(structure);
    const std::uint64_t base = std::uint64_t{sm} * t.unitsPerSm + first;
    for (std::uint64_t i = 0; i < count; ++i) {
        UnitState& u = t.units[base + i];
        u.allocated = true;
        u.write = cycle; // contents architecturally undefined => new epoch
        u.readSinceWrite = false;
    }
}

void
AceAnalyzer::onFree(TargetStructure structure, SmId sm, std::uint32_t first,
                    std::uint32_t count, Cycle cycle)
{
    StructureTracker& t = tracker(structure);
    const std::uint64_t base = std::uint64_t{sm} * t.unitsPerSm + first;
    for (std::uint64_t i = 0; i < count; ++i) {
        UnitState& u = t.units[base + i];
        commit(t, u, cycle);
        u.allocated = false;
        u.readSinceWrite = false;
    }
}

void
AceAnalyzer::onKernelEnd(Cycle cycle)
{
    for (StructureTracker& t : trackers_) {
        for (UnitState& u : t.units) {
            commit(t, u, cycle);
            u.allocated = false;
            u.readSinceWrite = false;
        }
    }
}

std::uint64_t
AceAnalyzer::aceUnitCycles(TargetStructure structure) const
{
    return tracker(structure).aceCycles;
}

AceResult
runAceAnalysis(const GpuConfig& config, const WorkloadInstance& instance,
               AceMode mode)
{
    const auto t0 = std::chrono::steady_clock::now();

    AceAnalyzer analyzer(config, mode);
    Gpu gpu(config);
    RunOptions options;
    options.observer = &analyzer;
    RunResult run = gpu.run(instance.program, instance.launch,
                            instance.image, options);
    if (!run.clean()) {
        fatal("ACE analysis: fault-free run of '", instance.workloadName,
              "' trapped (", trapKindName(run.trap), ")");
    }
    std::string why;
    if (!verifyOutputs(instance, run.memory, &why)) {
        fatal("ACE analysis: golden check failed: ", why);
    }

    AceResult result;
    result.goldenStats = run.stats;
    result.structures.reserve(kNumTargetStructures);
    for (const StructureSpec& spec : structureRegistry()) {
        AceStructureResult r;
        r.structure = spec.id;
        r.aceUnitCycles = analyzer.aceUnitCycles(spec.id);
        // Bit-weighted structures divide bit-cycles by bits; uniform
        // structures divide unit-cycles by units (same ratio per bit).
        r.totalUnits = spec.aceUnitBits
                           ? structureBitsTotal(config, spec.id)
                           : structureAceUnitsTotal(config, spec.id);
        r.cycles = run.stats.cycles;
        result.structures.push_back(r);
    }

    const auto t1 = std::chrono::steady_clock::now();
    result.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    return result;
}

} // namespace gpr
