#include "reliability/ace.hh"

#include <chrono>

#include "common/logging.hh"
#include "sim/gpu.hh"

namespace gpr {

AceAnalyzer::AceAnalyzer(const GpuConfig& config, AceMode mode)
    : mode_(mode)
{
    vrf_.wordsPerSm = config.regFileWordsPerSm;
    vrf_.words.resize(std::uint64_t{config.numSms} *
                      config.regFileWordsPerSm);
    lds_.wordsPerSm = config.smemWordsPerSm();
    lds_.words.resize(std::uint64_t{config.numSms} *
                      config.smemWordsPerSm());
    if (config.scalarRegWordsPerSm > 0) {
        srf_.wordsPerSm = config.scalarRegWordsPerSm;
        srf_.words.resize(std::uint64_t{config.numSms} *
                          config.scalarRegWordsPerSm);
    }
}

AceAnalyzer::StructureTracker&
AceAnalyzer::tracker(TargetStructure structure)
{
    switch (structure) {
      case TargetStructure::VectorRegisterFile:
        return vrf_;
      case TargetStructure::SharedMemory:
        return lds_;
      case TargetStructure::ScalarRegisterFile:
        return srf_;
    }
    panic("bad structure");
}

const AceAnalyzer::StructureTracker&
AceAnalyzer::tracker(TargetStructure structure) const
{
    return const_cast<AceAnalyzer*>(this)->tracker(structure);
}

void
AceAnalyzer::commit(StructureTracker& t, WordState& w, Cycle upto)
{
    if (!w.allocated || !w.readSinceWrite)
        return;
    const Cycle end = mode_ == AceMode::Standard ? w.lastRead : upto;
    if (end > w.write)
        t.aceCycles += end - w.write;
}

void
AceAnalyzer::onRead(TargetStructure structure, SmId sm, std::uint32_t word,
                    Cycle cycle)
{
    StructureTracker& t = tracker(structure);
    WordState& w = t.words[std::uint64_t{sm} * t.wordsPerSm + word];
    w.lastRead = cycle;
    w.readSinceWrite = true;
}

void
AceAnalyzer::onWrite(TargetStructure structure, SmId sm, std::uint32_t word,
                     Cycle cycle)
{
    StructureTracker& t = tracker(structure);
    WordState& w = t.words[std::uint64_t{sm} * t.wordsPerSm + word];
    commit(t, w, cycle);
    w.write = cycle;
    w.readSinceWrite = false;
}

void
AceAnalyzer::onAlloc(TargetStructure structure, SmId sm,
                     std::uint32_t first, std::uint32_t count, Cycle cycle)
{
    StructureTracker& t = tracker(structure);
    const std::uint64_t base = std::uint64_t{sm} * t.wordsPerSm + first;
    for (std::uint64_t i = 0; i < count; ++i) {
        WordState& w = t.words[base + i];
        w.allocated = true;
        w.write = cycle; // contents architecturally undefined => new epoch
        w.readSinceWrite = false;
    }
}

void
AceAnalyzer::onFree(TargetStructure structure, SmId sm, std::uint32_t first,
                    std::uint32_t count, Cycle cycle)
{
    StructureTracker& t = tracker(structure);
    const std::uint64_t base = std::uint64_t{sm} * t.wordsPerSm + first;
    for (std::uint64_t i = 0; i < count; ++i) {
        WordState& w = t.words[base + i];
        commit(t, w, cycle);
        w.allocated = false;
        w.readSinceWrite = false;
    }
}

void
AceAnalyzer::onKernelEnd(Cycle cycle)
{
    for (StructureTracker* t : {&vrf_, &lds_, &srf_}) {
        for (WordState& w : t->words) {
            commit(*t, w, cycle);
            w.allocated = false;
            w.readSinceWrite = false;
        }
    }
}

std::uint64_t
AceAnalyzer::aceWordCycles(TargetStructure structure) const
{
    return tracker(structure).aceCycles;
}

AceResult
runAceAnalysis(const GpuConfig& config, const WorkloadInstance& instance,
               AceMode mode)
{
    const auto t0 = std::chrono::steady_clock::now();

    AceAnalyzer analyzer(config, mode);
    Gpu gpu(config);
    RunOptions options;
    options.observer = &analyzer;
    RunResult run = gpu.run(instance.program, instance.launch,
                            instance.image, options);
    if (!run.clean()) {
        fatal("ACE analysis: fault-free run of '", instance.workloadName,
              "' trapped (", trapKindName(run.trap), ")");
    }
    std::string why;
    if (!verifyOutputs(instance, run.memory, &why)) {
        fatal("ACE analysis: golden check failed: ", why);
    }

    AceResult result;
    result.goldenStats = run.stats;

    auto fill = [&](AceStructureResult& r, TargetStructure s,
                    std::uint64_t total_words) {
        r.structure = s;
        r.aceWordCycles = analyzer.aceWordCycles(s);
        r.totalWords = total_words;
        r.cycles = run.stats.cycles;
    };
    fill(result.registerFile, TargetStructure::VectorRegisterFile,
         std::uint64_t{config.numSms} * config.regFileWordsPerSm);
    fill(result.sharedMemory, TargetStructure::SharedMemory,
         std::uint64_t{config.numSms} * config.smemWordsPerSm());
    fill(result.scalarRegisterFile, TargetStructure::ScalarRegisterFile,
         std::uint64_t{config.numSms} * config.scalarRegWordsPerSm);

    const auto t1 = std::chrono::steady_clock::now();
    result.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    return result;
}

} // namespace gpr
