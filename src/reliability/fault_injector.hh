/**
 * @file
 * Single-fault injection runs and outcome classification — the per-run
 * engine underneath statistical campaigns (the GUFI/SIFI injection core).
 */

#ifndef GPR_RELIABILITY_FAULT_INJECTOR_HH
#define GPR_RELIABILITY_FAULT_INJECTOR_HH

#include <cstdint>
#include <string_view>

#include "common/random.hh"
#include "sim/gpu.hh"
#include "workloads/workload.hh"

namespace gpr {

/** Classification of a single injection. */
enum class FaultOutcome : std::uint8_t
{
    Masked, ///< output equals golden under the workload's comparison rule
    Sdc,    ///< silent data corruption: clean exit, wrong output
    Due,    ///< detected unrecoverable error: trap / hang / deadlock
};

constexpr std::string_view
faultOutcomeName(FaultOutcome o)
{
    switch (o) {
      case FaultOutcome::Masked:
        return "masked";
      case FaultOutcome::Sdc:
        return "SDC";
      case FaultOutcome::Due:
        return "DUE";
    }
    return "unknown";
}

/** Result of one injection. */
struct InjectionResult
{
    FaultSpec fault;
    FaultOutcome outcome = FaultOutcome::Masked;
    TrapKind trap = TrapKind::None;
};

/**
 * Runs golden + injected executions of one workload instance on one GPU.
 * Reusable across many injections (keeps its simulator instance warm);
 * each worker thread of a campaign owns one FaultInjector.
 */
class FaultInjector
{
  public:
    /**
     * @p config must outlive the injector; @p instance is the built
     * workload (shared, read-only).
     */
    FaultInjector(const GpuConfig& config,
                  const WorkloadInstance& instance);

    /**
     * Run the fault-free reference execution.  Throws FatalError if the
     * workload does not verify fault-free (a workload bug, not a DUE).
     */
    const RunResult& goldenRun();

    /** Golden cycle count (runs the golden execution if needed). */
    Cycle goldenCycles();

    /**
     * Adopt the golden cycle count of a previously *validated* fault-free
     * run of the same instance (e.g. the cell's ACE-instrumented pass),
     * so this injector skips its own reference simulation.  Injection
     * outcomes only consume the golden run through its cycle count — the
     * output comparison is against the instance's host-computed goldens —
     * so adopted and self-run injectors classify identically.  After
     * adoption goldenRun() is unavailable (there is no full RunResult to
     * return); goldenCycles() and inject*() keep working.
     */
    void adoptGoldenCycles(Cycle cycles);

    /** Inject @p fault and classify the outcome. */
    InjectionResult inject(const FaultSpec& fault);

    /**
     * Sample a uniformly random (bit, cycle) fault in @p structure using
     * @p rng, inject it, and classify.
     */
    InjectionResult injectRandom(TargetStructure structure, Rng& rng);

    /** The device (for structure sizes). */
    const Gpu& gpu() const { return gpu_; }

  private:
    const GpuConfig& config_;
    const WorkloadInstance& instance_;
    Gpu gpu_;
    RunResult golden_;
    bool have_golden_ = false;
    bool golden_adopted_ = false;
};

} // namespace gpr

#endif // GPR_RELIABILITY_FAULT_INJECTOR_HH
