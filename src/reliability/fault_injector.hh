/**
 * @file
 * Single-fault injection runs and outcome classification — the per-run
 * engine underneath statistical campaigns (the GUFI/SIFI injection core).
 */

#ifndef GPR_RELIABILITY_FAULT_INJECTOR_HH
#define GPR_RELIABILITY_FAULT_INJECTOR_HH

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/random.hh"
#include "reliability/fault_windows.hh"
#include "sim/gpu.hh"
#include "workloads/workload.hh"

namespace gpr {

/** Classification of a single injection. */
enum class FaultOutcome : std::uint8_t
{
    Masked, ///< output equals golden under the workload's comparison rule
    Sdc,    ///< silent data corruption: clean exit, wrong output
    Due,    ///< detected unrecoverable error: trap / hang / deadlock
};

constexpr std::string_view
faultOutcomeName(FaultOutcome o)
{
    switch (o) {
      case FaultOutcome::Masked:
        return "masked";
      case FaultOutcome::Sdc:
        return "SDC";
      case FaultOutcome::Due:
        return "DUE";
    }
    return "unknown";
}

/** How the checkpoint engine classified an injection Masked without
 *  simulating to completion.  Engine metadata only: the outcome is
 *  identical to a full from-scratch simulation either way. */
enum class InjectionShortcut : std::uint8_t
{
    None,           ///< simulated to trap/completion (or legacy engine)
    DeadWindow,     ///< outside every observability window: no simulation
    HashConvergence ///< post-fault state hash rejoined the golden run
};

/** Result of one injection. */
struct InjectionResult
{
    FaultSpec fault;
    FaultOutcome outcome = FaultOutcome::Masked;
    TrapKind trap = TrapKind::None;
    InjectionShortcut shortcut = InjectionShortcut::None;

    /** Classified Masked without a full simulation. */
    bool
    converged() const
    {
        return shortcut != InjectionShortcut::None;
    }
};

/**
 * One golden run's checkpoint pack: N evenly spaced full-state
 * checkpoints plus the golden trajectory's state hash at every
 * hashInterval boundary.  Built once per (workload, GPU, workloadSeed)
 * cell and shared (read-only) by every injector of that cell.  An
 * injection consults the observability windows first (a fault outside
 * every window is exactly Masked with zero simulation), then restores
 * the nearest checkpoint at or before its fault cycle and early-outs
 * as soon as its post-fault state hash rejoins the golden trajectory.
 */
struct CheckpointPack
{
    Cycle goldenCycles = 0;
    Cycle hashInterval = 0;
    /** Golden state hash at cycle k*hashInterval, k = 1, 2, ... */
    std::vector<std::uint64_t> hashes;
    /** Checkpoints in ascending .now order (none at cycle 0 — starting
     *  from scratch is already free). */
    std::vector<GpuCheckpoint> checkpoints;
    /** Exact per-word observability windows of the golden run. */
    FaultWindows windows;
};

/**
 * Runs golden + injected executions of one workload instance on one GPU.
 * Reusable across many injections (keeps its simulator instance warm);
 * each worker thread of a campaign owns one FaultInjector.
 */
class FaultInjector
{
  public:
    /**
     * @p config must outlive the injector; @p instance is the built
     * workload (shared, read-only).
     */
    FaultInjector(const GpuConfig& config,
                  const WorkloadInstance& instance);

    /**
     * Run the fault-free reference execution.  Throws FatalError if the
     * workload does not verify fault-free (a workload bug, not a DUE).
     */
    const RunResult& goldenRun();

    /** Golden cycle count (runs the golden execution if needed). */
    Cycle goldenCycles();

    /**
     * Adopt the golden cycle count of a previously *validated* fault-free
     * run of the same instance (e.g. the cell's ACE-instrumented pass),
     * so this injector skips its own reference simulation.  Injection
     * outcomes only consume the golden run through its cycle count — the
     * output comparison is against the instance's host-computed goldens —
     * so adopted and self-run injectors classify identically.  After
     * adoption goldenRun() is unavailable (there is no full RunResult to
     * return); goldenCycles() and inject*() keep working.
     */
    void adoptGoldenCycles(Cycle cycles);

    /**
     * Run one extra golden pass that records @p checkpoints evenly
     * spaced checkpoints plus the golden trajectory's per-interval state
     * hashes, and arm this injector with the result.  Requires the
     * golden cycle count (runs or adopts it first).  Returns the pack
     * so sibling injectors of the same cell can adopt it instead of
     * re-recording.  @p checkpoints == 0 yields a hash-only pack (still
     * enables early-out, no prefix skipping).
     */
    std::shared_ptr<const CheckpointPack>
    buildCheckpointPack(unsigned checkpoints);

    /**
     * Share a pack recorded by another injector of the same
     * (config, instance, workloadSeed) cell.
     */
    void adoptCheckpointPack(std::shared_ptr<const CheckpointPack> pack);

    /** The armed pack, if any. */
    const std::shared_ptr<const CheckpointPack>&
    checkpointPack() const
    {
        return pack_;
    }

    /**
     * Inject @p fault and classify the outcome.  With a checkpoint pack
     * armed, the run restores the nearest checkpoint <= fault.cycle and
     * early-outs on state convergence; the classification is identical
     * to the from-scratch path either way (outcomes depend only on
     * trap + final memory, and a state-hash match pins both to the
     * golden run's).  Persistent behaviors (stuck-at / intermittent)
     * keep the checkpoint restore but disable the dead-window prefilter
     * and the hash early-out per fault — both assume the fault is a
     * one-shot flip the run can outlive.
     */
    InjectionResult inject(const FaultSpec& fault);

    /**
     * Sample a uniformly random (bit, cycle) fault in @p structure using
     * @p rng, stamp it with @p shape, inject it, and classify.  The
     * draw order (bit, then cycle, then any shape-specific parameters)
     * is pinned: default-shape sampling is bit-identical to the original
     * single-flip model, and intermittent duty-cycle parameters are
     * derived from the same per-injection stream deterministically.
     */
    InjectionResult injectRandom(TargetStructure structure, Rng& rng,
                                 const FaultShape& shape = {});

    /** The device (for structure sizes). */
    const Gpu& gpu() const { return gpu_; }

  private:
    const GpuConfig& config_;
    const WorkloadInstance& instance_;
    Gpu gpu_;
    RunResult golden_;
    bool have_golden_ = false;
    bool golden_adopted_ = false;
    std::shared_ptr<const CheckpointPack> pack_;
};

/** Default checkpoint count per golden run (the `--checkpoints` CLI
 *  default); 0 selects the legacy from-scratch engine. */
constexpr unsigned kDefaultCheckpoints = 8;

} // namespace gpr

#endif // GPR_RELIABILITY_FAULT_INJECTOR_HH
