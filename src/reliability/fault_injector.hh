/**
 * @file
 * Single-fault injection runs and outcome classification — the per-run
 * engine underneath statistical campaigns (the GUFI/SIFI injection core).
 */

#ifndef GPR_RELIABILITY_FAULT_INJECTOR_HH
#define GPR_RELIABILITY_FAULT_INJECTOR_HH

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/random.hh"
#include "reliability/fault_windows.hh"
#include "sim/gpu.hh"
#include "workloads/workload.hh"

namespace gpr {

/** Classification of a single injection. */
enum class FaultOutcome : std::uint8_t
{
    Masked, ///< output equals golden under the workload's comparison rule
    Sdc,    ///< silent data corruption: clean exit, wrong output
    Due,    ///< detected unrecoverable error: trap / hang / deadlock
};

constexpr std::string_view
faultOutcomeName(FaultOutcome o)
{
    switch (o) {
      case FaultOutcome::Masked:
        return "masked";
      case FaultOutcome::Sdc:
        return "SDC";
      case FaultOutcome::Due:
        return "DUE";
    }
    return "unknown";
}

/** How the checkpoint engine classified an injection Masked without
 *  simulating to completion.  Engine metadata only: the outcome is
 *  identical to a full from-scratch simulation either way. */
enum class InjectionShortcut : std::uint8_t
{
    None,            ///< simulated to trap/completion (or legacy engine)
    DeadWindow,      ///< outside every observability window: no simulation
    HashConvergence, ///< post-fault state hash rejoined the golden run
    /** Persistent prefilter: every golden read of the stuck word at or
     *  after the fault cycle already observes the forced value, so the
     *  forcing never changes a value entering computation — exactly
     *  Masked with zero simulation (see FaultWindows::stuckAgreeCycle). */
    ValueResidency,
};

/** Result of one injection. */
struct InjectionResult
{
    FaultSpec fault;
    FaultOutcome outcome = FaultOutcome::Masked;
    TrapKind trap = TrapKind::None;
    InjectionShortcut shortcut = InjectionShortcut::None;

    /** Classified Masked without a full simulation. */
    bool
    converged() const
    {
        return shortcut != InjectionShortcut::None;
    }
};

/**
 * One golden run's checkpoint pack (v2, delta-encoded): a single full
 * baseline at cycle 0 plus per-checkpoint dirty page sets against it,
 * the golden trajectory's state hash at every hashInterval boundary,
 * and the exact observability windows.  Built once per (workload, GPU,
 * workloadSeed) cell and shared (read-only) by every injector of that
 * cell.  An injection consults the observability windows first (a fault
 * outside every window is exactly Masked with zero simulation), then
 * delta-restores the nearest checkpoint at or before its fault cycle
 * and early-outs as soon as its post-fault state hash rejoins the
 * golden trajectory.
 */
struct CheckpointPack
{
    Cycle goldenCycles = 0;
    Cycle hashInterval = 0;
    /** Golden state hash at cycle k*hashInterval, k = 1, 2, ... */
    std::vector<std::uint64_t> hashes;
    /** The full cycle-0 state every delta is encoded against. */
    GpuCheckpoint baseline;
    /** Delta checkpoints ascending by .now, starting with the trivial
     *  cycle-0 one (so every fault cycle has a checkpoint below it). */
    std::vector<GpuCheckpointDelta> deltas;
    /** How the checkpoint cycles were chosen (diagnostics). */
    CheckpointPlacement placement = CheckpointPlacement::FaultAware;
    /** Exact per-word observability windows of the golden run. */
    FaultWindows windows;

    /** Resident bytes of the checkpoint state (baseline + deltas). */
    std::size_t
    approxBytes() const
    {
        std::size_t b = baseline.bytes();
        for (const GpuCheckpointDelta& d : deltas)
            b += d.bytes();
        return b;
    }

    /** What the same checkpoint cycles would cost as full snapshots
     *  (the v1 encoding): one baseline-sized copy per non-trivial
     *  checkpoint.  The approxBytes()/fullEquivalentBytes() ratio is
     *  the pack's compression factor. */
    std::size_t
    fullEquivalentBytes() const
    {
        std::size_t n = 0;
        for (const GpuCheckpointDelta& d : deltas)
            n += d.now > 0 ? 1 : 0;
        return baseline.bytes() * std::max<std::size_t>(n, 1);
    }
};

/** Wall-clock breakdown of where injection time goes, accumulated per
 *  injector across inject() calls (the bench's per-phase table). */
struct InjectionPhaseStats
{
    std::uint64_t injections = 0;
    /** Zero-simulation classifications: transient dead-window hits and
     *  persistent value-residency hits (split for the bench's
     *  per-behavior hit-rate table). */
    std::uint64_t deadWindowHits = 0;
    std::uint64_t residencyHits = 0;
    /** Runs ended early by a golden-hash match (any behavior). */
    std::uint64_t hashConvergeHits = 0;
    double prefilterSeconds = 0.0; ///< dead-window + residency queries
    double restoreSeconds = 0.0;   ///< checkpoint restore (full or delta)
    double hashSeconds = 0.0;      ///< trajectory hashing in injected runs
    double replaySeconds = 0.0;    ///< simulation proper (run - the above)

    void
    operator+=(const InjectionPhaseStats& o)
    {
        injections += o.injections;
        deadWindowHits += o.deadWindowHits;
        residencyHits += o.residencyHits;
        hashConvergeHits += o.hashConvergeHits;
        prefilterSeconds += o.prefilterSeconds;
        restoreSeconds += o.restoreSeconds;
        hashSeconds += o.hashSeconds;
        replaySeconds += o.replaySeconds;
    }
};

/**
 * Runs golden + injected executions of one workload instance on one GPU.
 * Reusable across many injections (keeps its simulator instance warm);
 * each worker thread of a campaign owns one FaultInjector.
 */
class FaultInjector
{
  public:
    /**
     * @p config must outlive the injector; @p instance is the built
     * workload (shared, read-only).
     */
    FaultInjector(const GpuConfig& config,
                  const WorkloadInstance& instance);

    /**
     * Run the fault-free reference execution.  Throws FatalError if the
     * workload does not verify fault-free (a workload bug, not a DUE).
     */
    const RunResult& goldenRun();

    /** Golden cycle count (runs the golden execution if needed). */
    Cycle goldenCycles();

    /**
     * Adopt the golden cycle count of a previously *validated* fault-free
     * run of the same instance (e.g. the cell's ACE-instrumented pass),
     * so this injector skips its own reference simulation.  Injection
     * outcomes only consume the golden run through its cycle count — the
     * output comparison is against the instance's host-computed goldens —
     * so adopted and self-run injectors classify identically.  After
     * adoption goldenRun() is unavailable (there is no full RunResult to
     * return); goldenCycles() and inject*() keep working.
     */
    void adoptGoldenCycles(Cycle cycles);

    /**
     * Record a checkpoint pack in two golden passes and arm this
     * injector with it.  Pass A records the observability windows and
     * the per-interval trajectory hashes; the @p checkpoints budget is
     * then distributed over the run per @p placement (fault-aware uses
     * pass A's windows as the density model); pass B captures the
     * cycle-0 baseline plus a delta checkpoint at each placed cycle.
     * Requires the golden cycle count (runs or adopts it first).
     * Returns the pack so sibling injectors of the same cell can adopt
     * it instead of re-recording.  @p checkpoints == 0 yields a
     * baseline-only pack (anchored restarts from cycle 0, hash
     * early-out, no mid-run skipping).
     */
    std::shared_ptr<const CheckpointPack> buildCheckpointPack(
        unsigned checkpoints,
        CheckpointPlacement placement = CheckpointPlacement::FaultAware);

    /**
     * Share a pack recorded by another injector of the same
     * (config, instance, workloadSeed) cell.
     */
    void adoptCheckpointPack(std::shared_ptr<const CheckpointPack> pack);

    /** The armed pack, if any. */
    const std::shared_ptr<const CheckpointPack>&
    checkpointPack() const
    {
        return pack_;
    }

    /**
     * Inject @p fault and classify the outcome.  With a checkpoint pack
     * armed, the run restores the nearest checkpoint <= fault.cycle and
     * early-outs on state convergence; the classification is identical
     * to the from-scratch path either way (outcomes depend only on
     * trap + final memory, and a state-hash match pins both to the
     * golden run's).  Persistent behaviors (stuck-at / intermittent)
     * get persistence-sound equivalents on word-granular storage: the
     * value-residency prefilter classifies a fault whose forced value
     * agrees with every remaining golden read as Masked with zero
     * simulation, and past the residency agree-from cycle the run
     * compares its (canonical for stuck-at, raw for intermittent)
     * trajectory hash against golden and early-outs on a match.
     * Control-bit structures keep the restore but run to completion.
     */
    InjectionResult inject(const FaultSpec& fault);

    /**
     * Sample the fault injectRandom() would inject, without running it:
     * a uniformly random (bit, cycle) in @p structure stamped with
     * @p shape.  The draw order (bit, then cycle, then any
     * shape-specific parameters) is pinned: default-shape sampling is
     * bit-identical to the original single-flip model, and intermittent
     * duty-cycle parameters are derived from the same per-injection
     * stream deterministically.  Splitting sampling from injection lets
     * campaign workers pre-draw a batch and execute it grouped by
     * checkpoint interval (outcomes are a pure function of the fault,
     * so execution order is free).
     */
    FaultSpec sampleRandom(TargetStructure structure, Rng& rng,
                           const FaultShape& shape = {});

    /** inject(sampleRandom(structure, rng, shape)). */
    InjectionResult injectRandom(TargetStructure structure, Rng& rng,
                                 const FaultShape& shape = {});

    /** Index of the armed pack's delta checkpoint that serves a fault
     *  at @p cycle (0 without a pack — everything replays from cycle
     *  0).  Shared-restore batching sorts same-cell persistent
     *  injections by this key so consecutive runs reuse the same
     *  restore point. */
    std::size_t checkpointIndexFor(Cycle cycle) const;

    /** The device (for structure sizes). */
    const Gpu& gpu() const { return gpu_; }

    /** Accumulated per-phase wall-clock of all inject() calls. */
    const InjectionPhaseStats& phaseStats() const { return phase_stats_; }
    void resetPhaseStats() { phase_stats_ = InjectionPhaseStats{}; }

  private:
    /** Anchor the device and the scratch image to the armed pack's
     *  baseline (no-op when already anchored to it). */
    void ensureAnchored();

    const GpuConfig& config_;
    const WorkloadInstance& instance_;
    Gpu gpu_;
    RunResult golden_;
    bool have_golden_ = false;
    bool golden_adopted_ = false;
    std::shared_ptr<const CheckpointPack> pack_;
    /** Injector-owned run image for delta resumes: reverted + patched
     *  in place each injection instead of copied. */
    MemoryImage scratch_;
    /** Pack scratch_/gpu_ are currently anchored to (see anchorTo). */
    const CheckpointPack* anchored_pack_ = nullptr;
    InjectionPhaseStats phase_stats_;
};

/** Default checkpoint budget per golden run (the `--checkpoints` CLI
 *  default); 0 selects the legacy from-scratch engine.  Delta encoding
 *  makes a checkpoint cost a fraction of a full snapshot, so the v2
 *  default is twice the full-snapshot era's 8: the extra checkpoints
 *  buy shorter fast-forward replay for a sub-linear memory increase. */
constexpr unsigned kDefaultCheckpoints = 16;

} // namespace gpr

#endif // GPR_RELIABILITY_FAULT_INJECTOR_HH
