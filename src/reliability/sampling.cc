#include "reliability/sampling.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gpr {

std::size_t
SamplePlan::resolvedMaxInjections() const
{
    if (!adaptive())
        return injections;
    if (maxInjections > 0)
        return maxInjections;
    return requiredSamples(margin, confidence);
}

std::vector<std::uint64_t>
sequentialSchedule(const SamplePlan& plan)
{
    GPR_ASSERT(plan.adaptive(), "schedule requires an adaptive plan");
    const std::uint64_t max_n = plan.resolvedMaxInjections();
    std::vector<std::uint64_t> looks;
    double next = static_cast<double>(kSequentialInitialLook);
    std::uint64_t last = 0;
    while (true) {
        const std::uint64_t n = std::min<std::uint64_t>(
            max_n, static_cast<std::uint64_t>(std::llround(next)));
        if (n > last) {
            looks.push_back(n);
            last = n;
        }
        if (last >= max_n)
            break;
        next *= kSequentialGrowth;
    }
    return looks;
}

double
sequentialConfidence(const SamplePlan& plan)
{
    const std::size_t looks = sequentialSchedule(plan).size();
    GPR_ASSERT(looks > 0, "empty look schedule");
    return 1.0 - (1.0 - plan.confidence) / static_cast<double>(looks);
}

double
maxRateHalfWidth(std::uint64_t sdc, std::uint64_t due, std::uint64_t n,
                 double confidence)
{
    GPR_ASSERT(sdc + due <= n, "more failures than injections");
    if (n == 0)
        return 0.0;
    const auto nsz = static_cast<std::size_t>(n);
    double widest = 0.0;
    for (std::uint64_t k : {sdc, due, sdc + due}) {
        widest = std::max(
            widest, wilsonInterval(static_cast<std::size_t>(k), nsz,
                                   confidence)
                        .width() /
                        2.0);
    }
    return widest;
}

SequentialDecision
evaluateSequentialStop(std::uint64_t sdc, std::uint64_t due,
                       std::uint64_t n, const SamplePlan& plan)
{
    return evaluateSequentialStop(sdc, due, n, plan,
                                  sequentialConfidence(plan));
}

SequentialDecision
evaluateSequentialStop(std::uint64_t sdc, std::uint64_t due,
                       std::uint64_t n, const SamplePlan& plan,
                       double guarded_confidence)
{
    SequentialDecision decision;
    if (n == 0)
        return decision;
    decision.stop =
        maxRateHalfWidth(sdc, due, n, guarded_confidence) <= plan.margin;
    decision.achievedMargin =
        maxRateHalfWidth(sdc, due, n, plan.confidence);
    return decision;
}

} // namespace gpr
