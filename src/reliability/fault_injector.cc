#include "reliability/fault_injector.hh"

// gpr:lint-allow-file(D1): timing whitelist — PhaseClock reads feed only
// the InjectionPhaseStats seconds diagnostics, never outcomes, hashes,
// or RNG draws.

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "sim/structure_registry.hh"

namespace gpr {
namespace {

/**
 * Hash-boundary spacing for a golden run of @p golden_cycles on a chip
 * whose hashable state is @p state_words 32-bit words.  Boundaries
 * should be dense enough that a converged run exits soon after its flip
 * is erased (<= golden/256; the dirty-page digest cache makes a
 * boundary cost O(pages written since the last one), so they can be ~4x
 * denser than the full-rehash engine afforded), with a floor on
 * big-state/short-run cells where even the cached page-digest *sum*
 * (one add per page) would otherwise dominate.
 */
Cycle
chooseHashInterval(Cycle golden_cycles, std::uint64_t state_words)
{
    const Cycle by_run = golden_cycles / 256;
    const Cycle by_state = static_cast<Cycle>(state_words / 2048);
    return std::max<Cycle>(1, std::max(by_run, by_state));
}

using PhaseClock = std::chrono::steady_clock;

double
secondsSince(PhaseClock::time_point start)
{
    return std::chrono::duration<double>(PhaseClock::now() - start)
        .count();
}

} // namespace

FaultInjector::FaultInjector(const GpuConfig& config,
                             const WorkloadInstance& instance)
    : config_(config), instance_(instance), gpu_(config)
{
    if (instance.program.dialect() != config.dialect) {
        fatal("workload '", instance.workloadName, "' was built for ",
              dialectName(instance.program.dialect()), " but ", config.name,
              " executes ", dialectName(config.dialect));
    }
}

const RunResult&
FaultInjector::goldenRun()
{
    GPR_ASSERT(!golden_adopted_,
               "goldenRun() unavailable after adoptGoldenCycles() — only "
               "the cycle count was adopted, not a full RunResult");
    if (have_golden_)
        return golden_;

    golden_ = gpu_.run(instance_.program, instance_.launch,
                       instance_.image);
    if (!golden_.clean()) {
        fatal("workload '", instance_.workloadName,
              "' traps without any injected fault (",
              trapKindName(golden_.trap), ") — workload bug");
    }
    std::string why;
    if (!verifyOutputs(instance_, golden_.memory, &why)) {
        fatal("workload '", instance_.workloadName,
              "' fails its own golden check fault-free: ", why);
    }
    have_golden_ = true;
    return golden_;
}

Cycle
FaultInjector::goldenCycles()
{
    if (golden_adopted_)
        return golden_.stats.cycles;
    return goldenRun().stats.cycles;
}

void
FaultInjector::adoptGoldenCycles(Cycle cycles)
{
    GPR_ASSERT(cycles > 0, "adopted golden run must have executed");
    golden_ = RunResult{};
    golden_.stats.cycles = cycles;
    have_golden_ = true;
    golden_adopted_ = true;
}

std::shared_ptr<const CheckpointPack>
FaultInjector::buildCheckpointPack(unsigned checkpoints,
                                   CheckpointPlacement placement)
{
    const Cycle golden = goldenCycles();

    auto pack = std::make_shared<CheckpointPack>();
    pack->goldenCycles = golden;
    pack->placement = placement;
    // tags + packed valid/dirty bitmaps + data, per cache instance
    // (mirrors CacheModel::stateWords()).
    const auto cache_words = [&](std::uint64_t lines) {
        return lines * (1 + config_.cacheLineWords()) +
               2 * ((lines + 31) / 32);
    };
    const std::uint64_t state_words =
        static_cast<std::uint64_t>(config_.numSms) *
            (config_.regFileWordsPerSm + config_.scalarRegWordsPerSm +
             config_.smemWordsPerSm() +
             cache_words(config_.l1dLinesPerSm()) +
             cache_words(config_.l1iLinesPerSm())) +
        cache_words(config_.l2Lines()) + instance_.image.sizeWords();
    pack->hashInterval = chooseHashInterval(golden, state_words);

    // Pass A: observability windows + golden trajectory hashes.  No
    // checkpoints yet — the fault-aware placer needs the windows first.
    CheckpointRecorder hash_recorder;
    FaultWindowRecorder window_recorder(config_);
    RunOptions pass_a;
    pass_a.recorder = &hash_recorder;
    pass_a.hashInterval = pack->hashInterval;
    pass_a.observer = &window_recorder;
    const RunResult run_a = gpu_.run(instance_.program, instance_.launch,
                                     instance_.image, pass_a);
    GPR_ASSERT(run_a.clean() && run_a.stats.cycles == golden,
               "recording pass diverged from the golden run — the "
               "simulator is not deterministic");
    pack->hashes = std::move(hash_recorder.hashes);
    window_recorder.finalize(pack->windows);

    // Distribute the checkpoint budget.
    CheckpointRecorder delta_recorder;
    delta_recorder.delta = true;
    if (placement == CheckpointPlacement::FaultAware) {
        delta_recorder.checkpointCycles =
            pack->windows.placeCheckpoints(config_, golden, checkpoints);
    } else {
        for (unsigned i = 1; i <= checkpoints; ++i) {
            const Cycle c = static_cast<Cycle>(
                static_cast<std::uint64_t>(golden) * i / (checkpoints + 1));
            if (c > 0 && (delta_recorder.checkpointCycles.empty() ||
                          delta_recorder.checkpointCycles.back() != c)) {
                delta_recorder.checkpointCycles.push_back(c);
            }
        }
    }

    // Pass B: cycle-0 baseline + a delta checkpoint per placed cycle.
    RunOptions pass_b;
    pass_b.recorder = &delta_recorder;
    pass_b.hashInterval = pack->hashInterval;
    const RunResult run_b = gpu_.run(instance_.program, instance_.launch,
                                     instance_.image, pass_b);
    GPR_ASSERT(run_b.clean() && run_b.stats.cycles == golden &&
                   delta_recorder.hashes == pack->hashes,
               "recording pass diverged from the golden run — the "
               "simulator is not deterministic");
    pack->baseline = std::move(delta_recorder.baseline);
    pack->deltas = std::move(delta_recorder.deltas);
    GPR_ASSERT(!pack->deltas.empty() && pack->deltas.front().now == 0,
               "delta recording lost its cycle-0 checkpoint");

    adoptCheckpointPack(pack);
    return pack;
}

void
FaultInjector::adoptCheckpointPack(
    std::shared_ptr<const CheckpointPack> pack)
{
    GPR_ASSERT(pack, "adopting an empty checkpoint pack");
    GPR_ASSERT(pack->goldenCycles == goldenCycles(),
               "checkpoint pack was recorded for a different golden run");
    pack_ = std::move(pack);
    anchored_pack_ = nullptr; // re-anchor lazily on the next inject()
}

void
FaultInjector::ensureAnchored()
{
    if (anchored_pack_ == pack_.get())
        return;
    gpu_.anchorTo(pack_->baseline);
    scratch_ = pack_->baseline.memory;
    scratch_.markCleanForRestore();
    anchored_pack_ = pack_.get();
}

InjectionResult
FaultInjector::inject(const FaultSpec& fault)
{
    const Cycle golden_cycles = goldenCycles();
    const bool persistent = fault.persistent();

    // The dead-window prefilter exists only for *transient* faults in
    // word-granular storage: control-bit structures (predicate file,
    // SIMT stack) act on the trajectory without a modelled read, and a
    // persistent fault's word is never dead while the forcing holds
    // (the next read re-manifests it regardless of golden liveness).
    // Multi-bit patterns stay in scope: the aligned group lies inside
    // the sampled bit's word, so one window query covers every bit.
    ++phase_stats_.injections;
    Cycle converge_min = 0; // persistent early-out threshold (0 = none)
    if (pack_ && structureSpec(fault.structure).exactDeadWindows) {
        if (!persistent) {
            const auto t0 = PhaseClock::now();
            const bool observed = pack_->windows.observed(
                fault.structure, fault.bitIndex / 32, fault.cycle);
            phase_stats_.prefilterSeconds += secondsSince(t0);
            if (!observed) {
                // The golden run never reads this word between the flip
                // and the word's next overwrite (or the end of the
                // run): the flip can not enter any computation, so the
                // injected run is the golden run — exactly Masked, no
                // simulation needed.
                ++phase_stats_.deadWindowHits;
                InjectionResult result;
                result.fault = fault;
                result.outcome = FaultOutcome::Masked;
                result.shortcut = InjectionShortcut::DeadWindow;
                return result;
            }
        } else {
            // Value-residency prefilter: the read overlay never mutates
            // the raw word, so the fault reaches computation only
            // through reads whose observed value the forcing *changes*.
            // agree is the first cycle from which every remaining
            // golden read of the faulted bits observes the forced value
            // (exact for word storage; intermittent faults force the
            // same value whenever active, so agreement over all reads
            // covers every duty cycle).
            const auto t0 = PhaseClock::now();
            const unsigned width = faultPatternWidth(fault.pattern);
            const auto bit_in_word =
                static_cast<unsigned>(fault.bitIndex % 32);
            const Cycle agree = pack_->windows.stuckAgreeCycle(
                fault.structure, fault.bitIndex / 32,
                bit_in_word - bit_in_word % width, width,
                faultForcedValue(fault));
            phase_stats_.prefilterSeconds += secondsSince(t0);
            if (fault.cycle >= agree) {
                ++phase_stats_.residencyHits;
                InjectionResult result;
                result.fault = fault;
                result.outcome = FaultOutcome::Masked;
                result.shortcut = InjectionShortcut::ValueResidency;
                return result;
            }
            // Not provably benign at the fault cycle, but past `agree`
            // a trajectory-hash match implies golden continuation — arm
            // the early-out when a comparable boundary exists at all.
            if (agree != FaultWindows::kNeverAgrees &&
                agree <= pack_->goldenCycles) {
                converge_min = agree;
            }
        }
    }

    RunOptions options;
    options.fault = fault;
    // Watchdog: anything this much past golden is a hang (DUE).
    options.maxCycles =
        static_cast<Cycle>(static_cast<double>(golden_cycles) *
                           config_.watchdogFactor) +
        1000;

    RunResult run;
    bool via_scratch = false;
    const auto run_start = PhaseClock::now();
    if (pack_) {
        // Hash early-out: unconditional for transient faults; for
        // persistent ones only past the residency threshold, where a
        // match of the canonical (stuck-at) or raw (intermittent) hash
        // provably pins the rest of the run to the golden trajectory.
        // Restoring from the nearest checkpoint is exact either way
        // (the trajectory is golden up to the fault cycle regardless
        // of what the fault does later).
        if (!persistent) {
            options.hashInterval = pack_->hashInterval;
            options.goldenHashes = &pack_->hashes;
        } else if (converge_min > fault.cycle) {
            options.hashInterval = pack_->hashInterval;
            options.goldenHashes = &pack_->hashes;
            options.convergeMinCycle = converge_min;
        }
        // Nearest delta checkpoint at or before the fault cycle
        // (deltas[0].now == 0, so one always exists); everything before
        // it is bit-identical to the golden run, so the anchored
        // restore skips it outright, touching only the pages the
        // previous injection dirtied.
        const auto it = std::upper_bound(
            pack_->deltas.begin(), pack_->deltas.end(), fault.cycle,
            [](Cycle c, const GpuCheckpointDelta& d) {
                return c < d.now;
            });
        GPR_ASSERT(it != pack_->deltas.begin(),
                   "checkpoint pack lacks its cycle-0 delta");
        ensureAnchored();
        options.resumeBaseline = &pack_->baseline;
        options.resumeDelta = &*std::prev(it);
        options.imageInOut = &scratch_;
        via_scratch = true;
        run = gpu_.run(instance_.program, instance_.launch,
                       MemoryImage{}, options);
    } else {
        run = gpu_.run(instance_.program, instance_.launch,
                       instance_.image, options);
    }
    const double run_seconds = secondsSince(run_start);
    phase_stats_.restoreSeconds += run.restoreSeconds;
    phase_stats_.hashSeconds += run.hashSeconds;
    phase_stats_.replaySeconds += std::max(
        0.0, run_seconds - run.restoreSeconds - run.hashSeconds);

    InjectionResult result;
    result.fault = fault;
    result.trap = run.trap;
    if (run.convergedToGolden) {
        result.shortcut = InjectionShortcut::HashConvergence;
        ++phase_stats_.hashConvergeHits;
    }
    if (run.convergedToGolden) {
        // State rejoined the golden trajectory: the remainder of the run
        // is the golden run's, whose output verified — Masked by
        // construction, no output comparison needed (or possible: the
        // run stopped before producing its outputs).
        result.outcome = FaultOutcome::Masked;
    } else if (!run.clean()) {
        result.outcome = FaultOutcome::Due;
    } else if (verifyOutputs(instance_,
                             via_scratch ? scratch_ : run.memory)) {
        result.outcome = FaultOutcome::Masked;
    } else {
        result.outcome = FaultOutcome::Sdc;
    }
    return result;
}

FaultSpec
FaultInjector::sampleRandom(TargetStructure structure, Rng& rng,
                            const FaultShape& shape)
{
    const std::uint64_t bits = gpu_.structureBits(structure);
    GPR_ASSERT(bits > 0, "cannot inject into ",
               targetStructureName(structure), " on ", config_.name);

    FaultSpec fault;
    fault.structure = structure;
    // Draw order is part of the determinism contract: bit then cycle,
    // exactly as the original single-flip model, so default-shape
    // campaigns replay pre-redesign samples bit-for-bit.  Shape-specific
    // draws come strictly after.
    fault.bitIndex = rng.below(bits);
    fault.cycle = rng.below(goldenCycles());
    fault.behavior = shape.behavior;
    fault.pattern = shape.pattern;
    if (shape.behavior == FaultBehavior::Intermittent) {
        // Seed-derived duty cycle: period 8..64, active 1..period-1
        // (never a permanently-stuck or never-active degenerate), and a
        // per-injection forced value.
        fault.intermittentPeriod = 8 + static_cast<std::uint32_t>(
                                           rng.below(57));
        fault.intermittentActive = 1 + static_cast<std::uint32_t>(
            rng.below(fault.intermittentPeriod - 1));
        fault.intermittentValue = rng.below(2) != 0;
    }
    return fault;
}

InjectionResult
FaultInjector::injectRandom(TargetStructure structure, Rng& rng,
                            const FaultShape& shape)
{
    return inject(sampleRandom(structure, rng, shape));
}

std::size_t
FaultInjector::checkpointIndexFor(Cycle cycle) const
{
    if (!pack_)
        return 0;
    const auto it = std::upper_bound(
        pack_->deltas.begin(), pack_->deltas.end(), cycle,
        [](Cycle c, const GpuCheckpointDelta& d) { return c < d.now; });
    GPR_ASSERT(it != pack_->deltas.begin(),
               "checkpoint pack lacks its cycle-0 delta");
    return static_cast<std::size_t>(it - pack_->deltas.begin()) - 1;
}

} // namespace gpr
