#include "reliability/fault_injector.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/structure_registry.hh"

namespace gpr {
namespace {

/**
 * Hash-boundary spacing for a golden run of @p golden_cycles on a chip
 * whose hashable state is @p state_words 32-bit words.  Two pressures:
 * boundaries should be dense enough that a converged run exits soon
 * after its flip is erased (<= golden/64), but each fingerprint walks
 * the full state, so on big-state/short-run cells the interval is
 * floored at state_words/256 to keep hashing a small fraction of the
 * simulation work.
 */
Cycle
chooseHashInterval(Cycle golden_cycles, std::uint64_t state_words)
{
    const Cycle by_run = golden_cycles / 64;
    const Cycle by_state = static_cast<Cycle>(state_words / 256);
    return std::max<Cycle>(1, std::max(by_run, by_state));
}

} // namespace

FaultInjector::FaultInjector(const GpuConfig& config,
                             const WorkloadInstance& instance)
    : config_(config), instance_(instance), gpu_(config)
{
    if (instance.program.dialect() != config.dialect) {
        fatal("workload '", instance.workloadName, "' was built for ",
              dialectName(instance.program.dialect()), " but ", config.name,
              " executes ", dialectName(config.dialect));
    }
}

const RunResult&
FaultInjector::goldenRun()
{
    GPR_ASSERT(!golden_adopted_,
               "goldenRun() unavailable after adoptGoldenCycles() — only "
               "the cycle count was adopted, not a full RunResult");
    if (have_golden_)
        return golden_;

    golden_ = gpu_.run(instance_.program, instance_.launch,
                       instance_.image);
    if (!golden_.clean()) {
        fatal("workload '", instance_.workloadName,
              "' traps without any injected fault (",
              trapKindName(golden_.trap), ") — workload bug");
    }
    std::string why;
    if (!verifyOutputs(instance_, golden_.memory, &why)) {
        fatal("workload '", instance_.workloadName,
              "' fails its own golden check fault-free: ", why);
    }
    have_golden_ = true;
    return golden_;
}

Cycle
FaultInjector::goldenCycles()
{
    if (golden_adopted_)
        return golden_.stats.cycles;
    return goldenRun().stats.cycles;
}

void
FaultInjector::adoptGoldenCycles(Cycle cycles)
{
    GPR_ASSERT(cycles > 0, "adopted golden run must have executed");
    golden_ = RunResult{};
    golden_.stats.cycles = cycles;
    have_golden_ = true;
    golden_adopted_ = true;
}

std::shared_ptr<const CheckpointPack>
FaultInjector::buildCheckpointPack(unsigned checkpoints)
{
    const Cycle golden = goldenCycles();

    auto pack = std::make_shared<CheckpointPack>();
    pack->goldenCycles = golden;
    const std::uint64_t state_words =
        static_cast<std::uint64_t>(config_.numSms) *
            (config_.regFileWordsPerSm + config_.scalarRegWordsPerSm +
             config_.smemWordsPerSm()) +
        instance_.image.sizeWords();
    pack->hashInterval = chooseHashInterval(golden, state_words);

    CheckpointRecorder recorder;
    for (unsigned i = 1; i <= checkpoints; ++i) {
        const Cycle c = static_cast<Cycle>(
            static_cast<std::uint64_t>(golden) * i / (checkpoints + 1));
        if (c > 0 && (recorder.checkpointCycles.empty() ||
                      recorder.checkpointCycles.back() != c)) {
            recorder.checkpointCycles.push_back(c);
        }
    }

    FaultWindowRecorder window_recorder(config_);
    RunOptions options;
    options.recorder = &recorder;
    options.hashInterval = pack->hashInterval;
    options.observer = &window_recorder;
    const RunResult run = gpu_.run(instance_.program, instance_.launch,
                                   instance_.image, options);
    GPR_ASSERT(run.clean() && run.stats.cycles == golden,
               "recording pass diverged from the golden run — the "
               "simulator is not deterministic");

    pack->hashes = std::move(recorder.hashes);
    pack->checkpoints = std::move(recorder.checkpoints);
    window_recorder.finalize(pack->windows);
    adoptCheckpointPack(pack);
    return pack;
}

void
FaultInjector::adoptCheckpointPack(
    std::shared_ptr<const CheckpointPack> pack)
{
    GPR_ASSERT(pack, "adopting an empty checkpoint pack");
    GPR_ASSERT(pack->goldenCycles == goldenCycles(),
               "checkpoint pack was recorded for a different golden run");
    pack_ = std::move(pack);
}

InjectionResult
FaultInjector::inject(const FaultSpec& fault)
{
    const Cycle golden_cycles = goldenCycles();
    const bool persistent = fault.persistent();

    // The dead-window prefilter exists only for *transient* faults in
    // word-granular storage: control-bit structures (predicate file,
    // SIMT stack) act on the trajectory without a modelled read, and a
    // persistent fault's word is never dead while the forcing holds
    // (the next read re-manifests it regardless of golden liveness).
    // Multi-bit patterns stay in scope: the aligned group lies inside
    // the sampled bit's word, so one window query covers every bit.
    if (pack_ && !persistent &&
        structureSpec(fault.structure).exactDeadWindows &&
        !pack_->windows.observed(fault.structure, fault.bitIndex / 32,
                                 fault.cycle)) {
        // The golden run never reads this word between the flip and the
        // word's next overwrite (or the end of the run): the flip can
        // not enter any computation, so the injected run is the golden
        // run — exactly Masked, no simulation needed.
        InjectionResult result;
        result.fault = fault;
        result.outcome = FaultOutcome::Masked;
        result.shortcut = InjectionShortcut::DeadWindow;
        return result;
    }

    RunOptions options;
    options.fault = fault;
    // Watchdog: anything this much past golden is a hang (DUE).
    options.maxCycles =
        static_cast<Cycle>(static_cast<double>(golden_cycles) *
                           config_.watchdogFactor) +
        1000;

    RunResult run;
    if (pack_) {
        // Persistent-fault mode: the state never rejoins the golden
        // trajectory, so hash early-out is off — but restoring from the
        // nearest checkpoint stays exact (the trajectory is golden up
        // to the fault cycle regardless of what the fault does later).
        if (!persistent) {
            options.hashInterval = pack_->hashInterval;
            options.goldenHashes = &pack_->hashes;
        }
        // Nearest checkpoint at or before the fault cycle; everything
        // before it is bit-identical to the golden run, so restoring
        // skips it outright.
        const auto it = std::upper_bound(
            pack_->checkpoints.begin(), pack_->checkpoints.end(),
            fault.cycle,
            [](Cycle c, const GpuCheckpoint& cp) { return c < cp.now; });
        if (it != pack_->checkpoints.begin()) {
            options.resume = &*std::prev(it);
            run = gpu_.run(instance_.program, instance_.launch,
                           MemoryImage{}, options);
        } else {
            run = gpu_.run(instance_.program, instance_.launch,
                           instance_.image, options);
        }
    } else {
        run = gpu_.run(instance_.program, instance_.launch,
                       instance_.image, options);
    }

    InjectionResult result;
    result.fault = fault;
    result.trap = run.trap;
    if (run.convergedToGolden)
        result.shortcut = InjectionShortcut::HashConvergence;
    if (run.convergedToGolden) {
        // State rejoined the golden trajectory: the remainder of the run
        // is the golden run's, whose output verified — Masked by
        // construction, no output comparison needed (or possible: the
        // run stopped before producing its outputs).
        result.outcome = FaultOutcome::Masked;
    } else if (!run.clean()) {
        result.outcome = FaultOutcome::Due;
    } else if (verifyOutputs(instance_, run.memory)) {
        result.outcome = FaultOutcome::Masked;
    } else {
        result.outcome = FaultOutcome::Sdc;
    }
    return result;
}

InjectionResult
FaultInjector::injectRandom(TargetStructure structure, Rng& rng,
                            const FaultShape& shape)
{
    const std::uint64_t bits = gpu_.structureBits(structure);
    GPR_ASSERT(bits > 0, "cannot inject into ",
               targetStructureName(structure), " on ", config_.name);

    FaultSpec fault;
    fault.structure = structure;
    // Draw order is part of the determinism contract: bit then cycle,
    // exactly as the original single-flip model, so default-shape
    // campaigns replay pre-redesign samples bit-for-bit.  Shape-specific
    // draws come strictly after.
    fault.bitIndex = rng.below(bits);
    fault.cycle = rng.below(goldenCycles());
    fault.behavior = shape.behavior;
    fault.pattern = shape.pattern;
    if (shape.behavior == FaultBehavior::Intermittent) {
        // Seed-derived duty cycle: period 8..64, active 1..period-1
        // (never a permanently-stuck or never-active degenerate), and a
        // per-injection forced value.
        fault.intermittentPeriod = 8 + static_cast<std::uint32_t>(
                                           rng.below(57));
        fault.intermittentActive = 1 + static_cast<std::uint32_t>(
            rng.below(fault.intermittentPeriod - 1));
        fault.intermittentValue = rng.below(2) != 0;
    }
    return inject(fault);
}

} // namespace gpr
