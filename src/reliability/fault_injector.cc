#include "reliability/fault_injector.hh"

#include "common/logging.hh"

namespace gpr {

FaultInjector::FaultInjector(const GpuConfig& config,
                             const WorkloadInstance& instance)
    : config_(config), instance_(instance), gpu_(config)
{
    if (instance.program.dialect() != config.dialect) {
        fatal("workload '", instance.workloadName, "' was built for ",
              dialectName(instance.program.dialect()), " but ", config.name,
              " executes ", dialectName(config.dialect));
    }
}

const RunResult&
FaultInjector::goldenRun()
{
    GPR_ASSERT(!golden_adopted_,
               "goldenRun() unavailable after adoptGoldenCycles() — only "
               "the cycle count was adopted, not a full RunResult");
    if (have_golden_)
        return golden_;

    golden_ = gpu_.run(instance_.program, instance_.launch,
                       instance_.image);
    if (!golden_.clean()) {
        fatal("workload '", instance_.workloadName,
              "' traps without any injected fault (",
              trapKindName(golden_.trap), ") — workload bug");
    }
    std::string why;
    if (!verifyOutputs(instance_, golden_.memory, &why)) {
        fatal("workload '", instance_.workloadName,
              "' fails its own golden check fault-free: ", why);
    }
    have_golden_ = true;
    return golden_;
}

Cycle
FaultInjector::goldenCycles()
{
    if (golden_adopted_)
        return golden_.stats.cycles;
    return goldenRun().stats.cycles;
}

void
FaultInjector::adoptGoldenCycles(Cycle cycles)
{
    GPR_ASSERT(cycles > 0, "adopted golden run must have executed");
    golden_ = RunResult{};
    golden_.stats.cycles = cycles;
    have_golden_ = true;
    golden_adopted_ = true;
}

InjectionResult
FaultInjector::inject(const FaultSpec& fault)
{
    const Cycle golden_cycles = goldenCycles();

    RunOptions options;
    options.fault = fault;
    // Watchdog: anything this much past golden is a hang (DUE).
    options.maxCycles =
        static_cast<Cycle>(static_cast<double>(golden_cycles) *
                           config_.watchdogFactor) +
        1000;

    RunResult run = gpu_.run(instance_.program, instance_.launch,
                             instance_.image, options);

    InjectionResult result;
    result.fault = fault;
    result.trap = run.trap;
    if (!run.clean()) {
        result.outcome = FaultOutcome::Due;
    } else if (verifyOutputs(instance_, run.memory)) {
        result.outcome = FaultOutcome::Masked;
    } else {
        result.outcome = FaultOutcome::Sdc;
    }
    return result;
}

InjectionResult
FaultInjector::injectRandom(TargetStructure structure, Rng& rng)
{
    const std::uint64_t bits = gpu_.structureBits(structure);
    GPR_ASSERT(bits > 0, "cannot inject into ",
               targetStructureName(structure), " on ", config_.name);

    FaultSpec fault;
    fault.structure = structure;
    fault.bitIndex = rng.below(bits);
    fault.cycle = rng.below(goldenCycles());
    return inject(fault);
}

} // namespace gpr
