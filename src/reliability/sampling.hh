/**
 * @file
 * Statistical-fault-injection sample planning — fixed-size plans and the
 * adaptive sequential stopping rule.
 *
 * Fixed-size plans implement the standard statistical FI methodology
 * (Leveugle et al., DATE 2009) the paper uses in footnote 4: with
 * n = 2,000 injections per structure the measured AVF carries a 2.88 %
 * error margin at 99 % confidence (conservative p = 0.5, infinite fault
 * population).
 *
 * Adaptive plans (margin > 0) invert that relationship: instead of a
 * fixed n sized for the worst case p = 0.5, a campaign keeps injecting
 * until every reported rate's (SDC, DUE, AVF) confidence-interval
 * half-width falls below the requested margin — which for the typical
 * masked-dominated campaign happens far earlier.  Three properties make
 * the rule sound and reproducible:
 *
 *  - **Deterministic look schedule.**  Stopping is only evaluated at the
 *    injection counts sequentialSchedule() returns — a geometric ladder
 *    derived purely from (margin, confidence, maxInjections).  The
 *    decision is therefore a pure function of the ordered outcome
 *    prefix, independent of sharding, thread count, and resume history.
 *  - **Peeking-bias guard.**  Checking an interval at L looks and
 *    stopping at the first success inflates the overall type-I error up
 *    to L-fold.  The rule therefore tests each look at the
 *    Bonferroni-corrected confidence 1 - (1-confidence)/L
 *    (sequentialConfidence()), so the *family-wise* coverage of the
 *    stopped interval still meets the nominal level.  Reported
 *    intervals use the nominal confidence; when the *rule* stops a
 *    campaign they are strictly tighter than the margin.  (A campaign
 *    that exhausts a user-set cap below the fixed-size equivalent ends
 *    wider — visible as achievedMargin > margin in the report.)
 *  - **Hard cap.**  maxInjections (default: the fixed-size n the same
 *    (margin, confidence) pair would prescribe, i.e. requiredSamples())
 *    bounds every campaign, so adaptive sampling never exceeds the
 *    legacy fixed plan it replaces.
 */

#ifndef GPR_RELIABILITY_SAMPLING_HH
#define GPR_RELIABILITY_SAMPLING_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/statistics.hh"

namespace gpr {

/** A sampling plan for one injection campaign. */
struct SamplePlan
{
    /** Fixed campaign size (ignored when margin > 0 selects the
     *  adaptive stopping rule). */
    std::size_t injections = 2000;
    double confidence = 0.99;
    /** Target CI half-width for every reported rate; > 0 enables
     *  adaptive sequential stopping, 0 keeps the legacy fixed size. */
    double margin = 0.0;
    /** Adaptive cap per campaign; 0 derives the fixed-size equivalent
     *  requiredSamples(margin, confidence). */
    std::size_t maxInjections = 0;

    /** Whether the plan stops adaptively instead of at a fixed n. */
    bool adaptive() const { return margin > 0.0; }

    /** Worst-case (p = 0.5) error margin of the fixed plan. */
    double
    errorMargin() const
    {
        return proportionErrorMargin(injections, confidence);
    }

    /** The most injections one campaign of this plan can run: the
     *  fixed plan size, or the adaptive cap (which early stopping only
     *  ever undercuts). */
    std::size_t resolvedMaxInjections() const;
};

/** The paper's plan: 2,000 injections, 99 % confidence, 2.88 % margin. */
inline SamplePlan
paperSamplePlan()
{
    return SamplePlan{2000, 0.99, 0.0, 0};
}

/** Smallest fixed plan achieving @p margin at @p confidence. */
inline SamplePlan
planForMargin(double margin, double confidence)
{
    return SamplePlan{requiredSamples(margin, confidence), confidence,
                      0.0, 0};
}

/** An adaptive plan: stop when every rate's CI half-width <= margin. */
inline SamplePlan
adaptivePlan(double margin, double confidence,
             std::size_t max_injections = 0)
{
    return SamplePlan{0, confidence, margin, max_injections};
}

// --- The sequential stopping rule ---------------------------------------

/** First look of the geometric schedule (then x kSequentialGrowth). */
constexpr std::size_t kSequentialInitialLook = 50;
/** Geometric growth factor between consecutive looks. */
constexpr double kSequentialGrowth = 1.5;

/**
 * The deterministic look schedule of an adaptive @p plan: strictly
 * increasing cumulative injection counts at which the stopping rule is
 * evaluated, ending exactly at resolvedMaxInjections().  A pure function
 * of the plan — never of execution knobs — which is what makes the
 * stopping decision shard-, thread- and resume-invariant.
 */
std::vector<std::uint64_t> sequentialSchedule(const SamplePlan& plan);

/**
 * Bonferroni-corrected confidence the stopping rule tests each look at:
 * 1 - (1 - confidence) / L for the L looks of the schedule.  Guards
 * against peeking bias — without it, early stopping would report
 * intervals whose real coverage is below the nominal level.
 */
double sequentialConfidence(const SamplePlan& plan);

/**
 * Largest Wilson half-width across the three reported rates (SDC, DUE,
 * AVF) of a campaign with @p sdc + @p due failures in @p n injections —
 * the single statistic both the stopping rule and the reported
 * "achieved margin" are defined on.  0 when n is 0 (nothing measured).
 */
double maxRateHalfWidth(std::uint64_t sdc, std::uint64_t due,
                        std::uint64_t n, double confidence);

/** Outcome of evaluating the stopping rule at one look. */
struct SequentialDecision
{
    /** All three rates met the margin at the guarded confidence. */
    bool stop = false;
    /** Largest nominal-confidence CI half-width across SDC/DUE/AVF —
     *  what the campaign reports as its achieved margin. */
    double achievedMargin = 0.0;
};

/**
 * Evaluate the stopping rule on the cumulative counts of the first
 * @p n injections (@p sdc + @p due <= @p n; the rest are masked).
 * Pure: equal inputs give equal decisions on every machine, shard
 * split, and resume history.  The second overload takes the
 * sequentialConfidence() value precomputed — the callers that evaluate
 * per look (or under a lock) derive it once per campaign instead of
 * rebuilding the schedule on every evaluation.
 */
SequentialDecision evaluateSequentialStop(std::uint64_t sdc,
                                          std::uint64_t due,
                                          std::uint64_t n,
                                          const SamplePlan& plan);
SequentialDecision evaluateSequentialStop(std::uint64_t sdc,
                                          std::uint64_t due,
                                          std::uint64_t n,
                                          const SamplePlan& plan,
                                          double guarded_confidence);

} // namespace gpr

#endif // GPR_RELIABILITY_SAMPLING_HH
