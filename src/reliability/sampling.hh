/**
 * @file
 * Statistical-fault-injection sample planning.
 *
 * Implements the standard statistical FI methodology (Leveugle et al.,
 * DATE 2009) the paper uses in footnote 4: with n = 2,000 injections per
 * structure the measured AVF carries a 2.88 % error margin at 99 %
 * confidence (conservative p = 0.5, infinite fault population).
 */

#ifndef GPR_RELIABILITY_SAMPLING_HH
#define GPR_RELIABILITY_SAMPLING_HH

#include <cstddef>

#include "common/statistics.hh"

namespace gpr {

/** A sampling plan for one injection campaign. */
struct SamplePlan
{
    std::size_t injections = 2000;
    double confidence = 0.99;

    /** Worst-case (p = 0.5) error margin of the plan. */
    double
    errorMargin() const
    {
        return proportionErrorMargin(injections, confidence);
    }
};

/** The paper's plan: 2,000 injections, 99 % confidence, 2.88 % margin. */
inline SamplePlan
paperSamplePlan()
{
    return SamplePlan{2000, 0.99};
}

/** Smallest plan achieving @p margin at @p confidence. */
inline SamplePlan
planForMargin(double margin, double confidence)
{
    return SamplePlan{requiredSamples(margin, confidence), confidence};
}

} // namespace gpr

#endif // GPR_RELIABILITY_SAMPLING_HH
