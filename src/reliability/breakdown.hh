/**
 * @file
 * Vulnerability breakdowns — the GUFI-style profiling layer above plain
 * AVF numbers: where (bit position) and when (execution phase) do the
 * non-masked faults land?
 *
 * Bit-position profiles explain *why* FI undershoots ACE on float-heavy
 * kernels (low mantissa bits are masked by the output tolerance, sign /
 * exponent / high-mantissa bits are not), and time profiles expose
 * occupancy phases (ramp-up/drain of the block scheduler).
 */

#ifndef GPR_RELIABILITY_BREAKDOWN_HH
#define GPR_RELIABILITY_BREAKDOWN_HH

#include <array>
#include <cstdint>

#include "reliability/campaign.hh"

namespace gpr {

/** Outcome counts for one bucket of a profile. */
struct OutcomeBucket
{
    std::uint32_t masked = 0;
    std::uint32_t sdc = 0;
    std::uint32_t due = 0;

    std::uint32_t total() const { return masked + sdc + due; }
    double
    avf() const
    {
        const std::uint32_t n = total();
        return n ? static_cast<double>(sdc + due) / n : 0.0;
    }
};

/** Number of time-quantile buckets in a profile. */
constexpr std::size_t kTimeBuckets = 10;

/**
 * Profiles derived from a record-keeping campaign:
 *  - byBit[b]: outcomes of injections that flipped bit b (0 = LSB) of a
 *    32-bit word;
 *  - byTime[q]: outcomes of injections in the q-th tenth of the golden
 *    execution.
 */
struct VulnerabilityBreakdown
{
    std::array<OutcomeBucket, 32> byBit{};
    std::array<OutcomeBucket, kTimeBuckets> byTime{};
    OutcomeBucket overall;

    /** AVF of the byte-aligned bit groups (handy summary). */
    double avfBitRange(unsigned lo_bit, unsigned hi_bit) const;
};

/**
 * Build the breakdown from a campaign that was run with
 * CampaignConfig::keepRecords = true.  @p golden_cycles is the campaign's
 * golden runtime (for time bucketing).  Throws FatalError if the campaign
 * kept no records.
 */
VulnerabilityBreakdown computeBreakdown(const CampaignResult& campaign,
                                        Cycle golden_cycles);

/**
 * Convenience: run a record-keeping campaign and profile it in one call.
 */
VulnerabilityBreakdown
runBreakdownCampaign(const GpuConfig& config,
                     const WorkloadInstance& instance,
                     TargetStructure structure,
                     CampaignConfig cc = {});

} // namespace gpr

#endif // GPR_RELIABILITY_BREAKDOWN_HH
