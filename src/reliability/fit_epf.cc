#include "reliability/fit_epf.hh"

#include "common/logging.hh"

namespace gpr {
namespace {

constexpr double kSecondsPerGigaHour = 1e9 * 3600.0;
constexpr double kBitsPerMbit = 1024.0 * 1024.0;

} // namespace

double
structureFit(std::uint64_t bits, double avf, const FitParams& params)
{
    GPR_ASSERT(avf >= 0.0 && avf <= 1.0, "AVF must be a probability, got ",
               avf);
    return params.rawFitPerMbit * (static_cast<double>(bits) /
                                   kBitsPerMbit) * avf;
}

double
executionSeconds(const GpuConfig& config, Cycle cycles)
{
    GPR_ASSERT(config.clockMhz > 0, "bad clock");
    return static_cast<double>(cycles) / (config.clockMhz * 1e6);
}

double
executionsInTime(double exec_seconds)
{
    GPR_ASSERT(exec_seconds > 0, "bad execution time");
    return kSecondsPerGigaHour / exec_seconds;
}

EpfResult
computeEpf(const GpuConfig& config, Cycle cycles, double avf_register_file,
           double avf_local_memory, double avf_scalar_register_file,
           const FitParams& params)
{
    EpfResult r;
    r.fitRegisterFile =
        structureFit(config.totalRegFileBits(), avf_register_file, params);
    r.fitLocalMemory =
        structureFit(config.totalSmemBits(), avf_local_memory, params);
    if (config.totalScalarRegBits() > 0) {
        r.fitScalarRegisterFile = structureFit(
            config.totalScalarRegBits(), avf_scalar_register_file, params);
    }
    r.execSeconds = executionSeconds(config, cycles);
    r.eit = executionsInTime(r.execSeconds);
    return r;
}

} // namespace gpr
