/**
 * @file
 * FIT / EIT / EPF metrics (Section II of the paper).
 *
 *   FIT_struct = rawFIT/bit x #bits x AVF        (failures in 1e9 hours)
 *   FIT_GPU    = sum over modelled structures
 *   EIT        = executions in 1e9 device-hours = 3.6e12 s / t_exec
 *   EPF        = EIT / FIT_GPU                   (executions per failure)
 *
 * The intrinsic per-bit soft-error rate is a technology constant the
 * paper does not publish; we use the customary 1,000 FIT per Mbit of SRAM
 * (configurable).  EPF only depends on it as a global scale factor, so
 * the cross-GPU ordering — the paper's actual finding — is unaffected.
 */

#ifndef GPR_RELIABILITY_FIT_EPF_HH
#define GPR_RELIABILITY_FIT_EPF_HH

#include <cstdint>

#include "arch/gpu_config.hh"
#include "common/types.hh"

namespace gpr {

struct FitParams
{
    /** Intrinsic SRAM SER, FIT per Mbit (2^20 bits). */
    double rawFitPerMbit = 1000.0;
};

/** FIT rate of one structure given its size and measured AVF. */
double structureFit(std::uint64_t bits, double avf,
                    const FitParams& params = {});

/** Kernel wall time in seconds on @p config. */
double executionSeconds(const GpuConfig& config, Cycle cycles);

/** Executions in 1e9 hours of device time. */
double executionsInTime(double exec_seconds);

/** Combined reliability/performance summary for one (GPU, workload). */
struct EpfResult
{
    double fitRegisterFile = 0.0;
    double fitLocalMemory = 0.0;
    double fitScalarRegisterFile = 0.0;

    double execSeconds = 0.0;
    double eit = 0.0;

    double
    fitTotal() const
    {
        return fitRegisterFile + fitLocalMemory + fitScalarRegisterFile;
    }
    double
    epf() const
    {
        const double fit = fitTotal();
        return fit > 0.0 ? eit / fit : 0.0;
    }
};

/**
 * Assemble the EPF for one (GPU, workload) given the measured AVFs of the
 * modelled structures (pass 0 for structures the chip lacks).
 */
EpfResult computeEpf(const GpuConfig& config, Cycle cycles,
                     double avf_register_file, double avf_local_memory,
                     double avf_scalar_register_file = 0.0,
                     const FitParams& params = {});

} // namespace gpr

#endif // GPR_RELIABILITY_FIT_EPF_HH
