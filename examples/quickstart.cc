/**
 * @file
 * Quickstart: analyze one benchmark on one GPU and print every metric the
 * study reports — AVF by fault injection and by ACE analysis, structure
 * occupancy, performance, FIT and EPF.
 *
 *     $ quickstart [workload] [gpu] [injections]
 *     $ quickstart vectoradd gtx480 500
 */

#include <cstdio>
#include <iostream>

#include "common/string_utils.hh"
#include "core/framework.hh"

int
main(int argc, char** argv)
{
    using namespace gpr;

    const std::string workload = argc > 1 ? argv[1] : "vectoradd";
    const GpuModel gpu =
        argc > 2 ? gpuModelFromName(argv[2]) : GpuModel::GeforceGtx480;

    std::size_t injections = 400;
    if (argc > 3) {
        if (const auto n = parseInt(argv[3]); n && *n >= 0)
            injections = static_cast<std::size_t>(*n);
    }

    // One declarative spec describes the whole experiment; the same
    // value serialises to JSON for `gpr study --spec` (see
    // examples/specs/smoke.json).
    const StudySpec spec =
        StudySpecBuilder().injections(injections).build();

    std::printf("analyzing '%s' with %zu injections per structure "
                "(+/-%.1f%% at %.0f%% confidence)...\n",
                workload.c_str(), spec.plan.injections,
                100.0 * spec.plan.errorMargin(),
                100.0 * spec.plan.confidence);

    ReliabilityFramework framework(gpu);
    const ReliabilityReport report = framework.analyze(workload, spec);
    report.printSummary(std::cout);
    return 0;
}
