/**
 * @file
 * Protection what-if explorer — the decision-making scenario the paper's
 * conclusions motivate: "architects can quantify the effectiveness of a
 * hardware based error protection technique ... along with a performance
 * cost.  Larger EPF numbers show a larger number of executions between
 * failures."
 *
 * Measures a benchmark's SDC/DUE rates per structure, then applies
 * parity / ECC-SECDED to the register file and local memory and reports
 * the new FIT and EPF next to the performance tax.
 *
 *     $ protection_explorer [workload] [gpu] [injections]
 */

#include <iostream>

#include "common/string_utils.hh"
#include "common/table.hh"
#include "core/framework.hh"
#include "reliability/protection.hh"

int
main(int argc, char** argv)
{
    using namespace gpr;

    const std::string workload = argc > 1 ? argv[1] : "matrixMul";
    const GpuModel gpu =
        argc > 2 ? gpuModelFromName(argv[2]) : GpuModel::GeforceGtx480;
    std::size_t injections = 300;
    if (argc > 3) {
        if (const auto n = parseInt(argv[3]); n && *n >= 0)
            injections = static_cast<std::size_t>(*n);
    }

    ReliabilityFramework framework(gpu);
    const StudySpec spec =
        StudySpecBuilder().injections(injections).build();
    const ReliabilityReport base = framework.analyze(workload, spec);

    std::cout << "baseline:\n";
    base.printSummary(std::cout);
    std::cout << '\n';

    const GpuConfig& cfg = framework.config();
    TextTable table({"scheme", "RF AVF", "LM AVF", "FIT_GPU", "exec (s)",
                     "EPF", "EPF gain"});

    const StructureReport& base_rf =
        base.forStructure(TargetStructure::VectorRegisterFile);
    const StructureReport& base_lm =
        base.forStructure(TargetStructure::SharedMemory);
    const StructureReport& base_srf =
        base.forStructure(TargetStructure::ScalarRegisterFile);

    const double base_epf = base.epf.epf();
    for (const ProtectionScheme& scheme : builtinProtectionSchemes()) {
        // Protect both studied structures with the same scheme.
        const ProtectedRates rf =
            applyProtection(scheme, base_rf.sdcRate, base_rf.dueRate);
        const ProtectedRates lm =
            base_lm.applicable
                ? applyProtection(scheme, base_lm.sdcRate, base_lm.dueRate)
                : ProtectedRates{};
        const ProtectedRates srf =
            base_srf.applicable
                ? applyProtection(scheme, base_srf.sdcRate,
                                  base_srf.dueRate)
                : ProtectedRates{};

        const auto slowdown_cycles = static_cast<Cycle>(
            static_cast<double>(base.cycles) * (1.0 + scheme.perfOverhead));
        const EpfResult epf =
            computeEpf(cfg, slowdown_cycles, rf.avf(), lm.avf(), srf.avf());

        table.addRow(
            {scheme.name, strprintf("%.2f%%", 100 * rf.avf()),
             base_lm.applicable
                 ? strprintf("%.2f%%", 100 * lm.avf())
                 : std::string("n/a"),
             strprintf("%.2f", epf.fitTotal()), sciNotation(epf.execSeconds),
             epf.fitTotal() > 0 ? sciNotation(epf.epf())
                                : std::string("inf"),
             epf.fitTotal() > 0 && base_epf > 0
                 ? strprintf("%.1fx", epf.epf() / base_epf)
                 : std::string("inf")});
    }
    table.render(std::cout);
    std::cout << "note: EPF gain trades against the per-scheme execution "
                 "overhead (parity 1%, ECC 3%).\n";
    return 0;
}
