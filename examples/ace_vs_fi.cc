/**
 * @file
 * Methodology trade-off study — the paper's Section I motivation: "the
 * delicate trade-off between analysis time and accuracy of the reported
 * measurements".
 *
 * Sweeps the FI sample size and shows the measured AVF converging (with
 * its shrinking confidence interval) next to the one-shot ACE number and
 * the wall-clock cost of each method.
 *
 *     $ ace_vs_fi [workload] [gpu]
 */

#include <iostream>

#include "common/string_utils.hh"
#include "common/table.hh"
#include "core/framework.hh"

int
main(int argc, char** argv)
{
    using namespace gpr;

    const std::string workload = argc > 1 ? argv[1] : "reduction";
    const GpuModel gpu =
        argc > 2 ? gpuModelFromName(argv[2]) : GpuModel::QuadroFx5600;

    ReliabilityFramework framework(gpu);
    const WorkloadInstance inst = framework.buildInstance(workload);
    const GpuConfig& cfg = framework.config();

    const AceResult ace = runAceAnalysis(cfg, inst);
    std::cout << strprintf(
        "%s on %s: ACE analysis takes %.3f s (single instrumented run)\n"
        "  register-file AVF-ACE = %.2f%%\n\n",
        workload.c_str(), cfg.name.c_str(), ace.wallSeconds,
        100 * ace.forStructure(TargetStructure::VectorRegisterFile).avf());

    // The sweep inherits the paper spec's campaign parameters (99 %
    // confidence) and only varies the sample size.
    const StudySpec paper = paperStudySpec();
    TextTable table({"injections", "AVF-FI", "Wilson 99% CI", "margin",
                     "worker-s", "cost vs ACE"});
    for (std::size_t n : {50u, 100u, 200u, 400u, 800u, 1600u}) {
        CampaignConfig cc;
        cc.plan = paper.plan;
        cc.plan.injections = n;
        cc.seed = paper.seed;
        const CampaignResult fi = runCampaign(
            cfg, inst, TargetStructure::VectorRegisterFile, cc);
        const Interval ci = fi.wilson();
        table.addRow(
            {strprintf("%zu", n), strprintf("%.2f%%", 100 * fi.avf()),
             strprintf("[%.1f%%, %.1f%%]", 100 * ci.lo, 100 * ci.hi),
             strprintf("+/-%.2f%%", 100 * fi.errorMargin()),
             strprintf("%.2f", fi.wallSeconds),
             strprintf("%.0fx work",
                       ace.wallSeconds > 0
                           ? fi.wallSeconds / ace.wallSeconds
                           : 0.0)});
    }
    table.render(std::cout);
    std::cout << "takeaway: for the register file the FI estimate "
                 "converges well below the ACE value\n(conservative "
                 "overestimate); for local memory the two agree — see "
                 "bench/fig2.\n";
    return 0;
}
