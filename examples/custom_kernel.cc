/**
 * @file
 * Extending the study beyond the paper's ten benchmarks: write a kernel
 * in the textual micro-ISA, assemble it, build a WorkloadInstance around
 * it by hand, and run the same FI + ACE analysis the built-in benchmarks
 * get.  The kernel here is SAXPY (y = a*x + y) with a bounds guard.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "arch/gpu_config.hh"
#include "common/random.hh"
#include "isa/assembler.hh"
#include "isa/disassembler.hh"
#include "reliability/ace.hh"
#include "reliability/campaign.hh"
#include "workloads/workload.hh"

namespace {

constexpr std::uint32_t kN = 16384;
constexpr std::uint32_t kBlock = 128;
constexpr float kA = 2.5f;

const char* kSaxpySource = R"(
.kernel saxpy
.dialect cuda
# params: 0 = x base, 1 = y base, 2 = n
    S2R   V0, SR_TID_X
    S2R   V1, SR_CTAID_X
    S2R   V2, SR_NTID_X
    LDPARAM V3, 0
    LDPARAM V4, 1
    LDPARAM V5, 2
    IMAD  V6, V1, V2, V0        # gid
    ISETP.LT P0, V6, V5
    SHL   V7, V6, 2
    IADD  V8, V7, V3            # &x[gid]
    IADD  V9, V7, V4            # &y[gid]
@P0 LDG   V10, [V8]
@P0 LDG   V11, [V9]
@P0 FFMA  V12, V10, 2.5f, V11   # a*x + y
@P0 STG   [V9], V12
    EXIT
)";

} // namespace

int
main()
{
    using namespace gpr;

    // Assemble and echo the round-tripped listing.
    const Program program = assemble(kSaxpySource);
    std::printf("assembled '%s': %u instructions, %u vregs\n\n",
                program.name().c_str(), program.size(),
                program.numVRegs());
    std::cout << disassemble(program) << '\n';

    // Hand-build the instance: inputs, launch, golden.
    WorkloadInstance inst;
    inst.workloadName = "saxpy";
    inst.program = program;

    Rng rng(0x5A4B);
    Buffer x = inst.image.allocBuffer(kN);
    Buffer y = inst.image.allocBuffer(kN);
    ExpectedOutput out;
    out.label = "y";
    out.buffer = y;
    out.compare = CompareKind::FloatRelTol;
    out.tolerance = 1e-5f;
    out.golden.resize(kN);
    for (std::uint32_t i = 0; i < kN; ++i) {
        const float xv = rng.uniformF(-2.0f, 2.0f);
        const float yv = rng.uniformF(-2.0f, 2.0f);
        inst.image.setFloat(x, i, xv);
        inst.image.setFloat(y, i, yv);
        out.golden[i] = floatBits(std::fma(xv, kA, yv));
    }
    inst.outputs.push_back(std::move(out));

    inst.launch.blockX = kBlock;
    inst.launch.gridX = kN / kBlock;
    inst.launch.addParamAddr(x.byteAddr);
    inst.launch.addParamAddr(y.byteAddr);
    inst.launch.addParamInt(static_cast<std::int32_t>(kN));

    // Same analyses the built-in benchmarks get.
    const GpuConfig& cfg = gpuConfig(GpuModel::GeforceGtx480);
    const AceResult ace = runAceAnalysis(cfg, inst);

    CampaignConfig cc;
    cc.plan.injections = 300;
    const CampaignResult fi =
        runCampaign(cfg, inst, TargetStructure::VectorRegisterFile, cc);

    std::printf("saxpy on %s: cycles=%llu IPC=%.2f\n", cfg.name.c_str(),
                static_cast<unsigned long long>(ace.goldenStats.cycles),
                ace.goldenStats.ipc());
    const AceStructureResult& rf_ace =
        ace.forStructure(TargetStructure::VectorRegisterFile);
    std::printf("register file: AVF-FI=%.1f%% (+/-%.1f%%)  AVF-ACE=%.1f%%  "
                "occupancy=%.1f%%\n",
                100 * fi.avf(), 100 * fi.errorMargin(), 100 * rf_ace.avf(),
                100 * fi.goldenStats.avgRegFileOccupancy);
    return 0;
}
