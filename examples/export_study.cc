/**
 * @file
 * Machine-readable study export: runs a (small, configurable) slice of
 * the comparison study and writes the results as CSV and JSON next to
 * the human-readable tables — the hand-off point to external plotting.
 *
 *     $ export_study [workload[,workload...]] [out_prefix]
 *
 * Writes <out_prefix>.csv and <out_prefix>.json (default "study").
 */

#include <fstream>
#include <iostream>

#include "common/string_utils.hh"
#include "core/export.hh"

int
main(int argc, char** argv)
{
    using namespace gpr;

    StudyOptions options;
    options.analysis.plan.injections = 100;
    if (argc > 1) {
        for (const auto& w : split(argv[1], ','))
            if (!w.empty())
                options.workloads.push_back(w);
    } else {
        options.workloads = {"vectoradd", "reduction"};
    }
    const std::string prefix = argc > 2 ? argv[2] : "study";

    const StudyResult study = runComparisonStudy(options);

    const std::string csv_path = prefix + ".csv";
    const std::string json_path = prefix + ".json";
    {
        std::ofstream csv(csv_path);
        writeStudyCsv(csv, study);
    }
    {
        std::ofstream json(json_path);
        writeStudyJson(json, study);
    }

    study.figure1().render(std::cout);
    std::cout << "wrote " << csv_path << " and " << json_path << " ("
              << study.reports.size() << " cells)\n";
    return 0;
}
