/**
 * @file
 * Machine-readable study export: runs a study described by a StudySpec —
 * either a spec JSON artifact or a small default slice — and writes the
 * results as CSV and JSON next to the human-readable tables, the
 * hand-off point to external plotting.
 *
 *     $ export_study [spec.json | workload[,workload...]] [out_prefix]
 *
 * Writes <out_prefix>.csv, <out_prefix>.json and <out_prefix>.spec.json
 * (default "study"); the latter reproduces the run via
 * `gpr study --spec`.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "common/string_utils.hh"
#include "core/export.hh"
#include "core/orchestrator.hh"

int
main(int argc, char** argv)
{
    using namespace gpr;

    // A .json argument is a full spec artifact; anything else is
    // workload-list sugar for the common case.
    StudySpec spec = StudySpecBuilder()
                         .workloads({"vectoradd", "reduction"})
                         .injections(100)
                         .build();
    if (argc > 1) {
        const std::string arg = argv[1];
        if (arg.size() > 5 && arg.substr(arg.size() - 5) == ".json")
            spec = StudySpec::fromJsonFile(arg);
        else
            spec.workloads = parseWorkloadList(arg);
    }
    const std::string prefix = argc > 2 ? argv[2] : "study";

    const StudyResult study = runComparisonStudy(spec);

    const std::string csv_path = prefix + ".csv";
    const std::string json_path = prefix + ".json";
    const std::string spec_path = prefix + ".spec.json";
    {
        std::ofstream csv(csv_path);
        writeStudyCsv(csv, study);
    }
    {
        std::ofstream json(json_path);
        writeStudyJson(json, study);
    }
    {
        std::ofstream spec_out(spec_path);
        spec.toJson(spec_out);
        spec_out << '\n';
    }

    study.figure1().render(std::cout);
    std::cout << "wrote " << csv_path << ", " << json_path << " and "
              << spec_path << " (" << study.reports.size()
              << " cells, spec " << spec.campaignHashHex() << ")\n";
    return 0;
}
