/**
 * @file
 * Cross-architecture comparison for a single benchmark — the paper's core
 * scenario in miniature: the same kernel source, lowered to the CUDA
 * dialect for the three NVIDIA chips and to the Southern Islands dialect
 * for the AMD chip, analysed on all four.
 *
 *     $ compare_gpus [workload] [injections]
 */

#include <iostream>

#include "common/string_utils.hh"
#include "common/table.hh"
#include "core/orchestrator.hh"

int
main(int argc, char** argv)
{
    using namespace gpr;

    const std::string workload = argc > 1 ? argv[1] : "matrixMul";
    std::size_t injections = 200;
    if (argc > 2) {
        if (const auto n = parseInt(argv[2]); n && *n >= 0)
            injections = static_cast<std::size_t>(*n);
    }

    TextTable table({"GPU", "uarch", "cycles", "exec (s)", "RF AVF-FI",
                     "RF AVF-ACE", "RF occ", "LM AVF-FI", "EPF"});

    // One spec describes the whole cross-GPU slice; the orchestrator
    // fans its campaigns out on one worker pool.
    const StudySpec spec = StudySpecBuilder()
                               .workload(workload)
                               .injections(injections)
                               .verbose(false)
                               .build();
    const StudyResult study = runStudy(spec);

    for (const ReliabilityReport& r : study.reports) {
        const StructureReport& rf =
            r.forStructure(TargetStructure::VectorRegisterFile);
        const StructureReport& lm =
            r.forStructure(TargetStructure::SharedMemory);
        table.addRow({r.gpuName,
                      gpuConfig(r.gpu).microarchitecture,
                      strprintf("%llu",
                                static_cast<unsigned long long>(r.cycles)),
                      sciNotation(r.execSeconds),
                      strprintf("%.1f%%", 100 * rf.avfFi),
                      strprintf("%.1f%%", 100 * rf.avfAce),
                      strprintf("%.1f%%", 100 * rf.occupancy),
                      lm.applicable
                          ? strprintf("%.1f%%", 100 * lm.avfFi)
                          : std::string("n/a"),
                      sciNotation(r.epf.epf())});
    }

    std::cout << "benchmark: " << workload << " (" << injections
              << " injections/structure)\n";
    table.render(std::cout);
    return 0;
}
