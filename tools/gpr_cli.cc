/**
 * @file
 * gpr — the command-line front end of the library.
 *
 *   gpr list                         benchmarks and GPU models
 *   gpr info <gpu>                   device configuration dump
 *   gpr disasm <workload> <gpu>      kernel listing as lowered per vendor
 *   gpr run <workload> <gpu>         golden run: perf + occupancy stats
 *   gpr profile <workload> <gpu>     access-traffic profile per structure
 *   gpr analyze <workload> <gpu> [n] full FI + ACE + EPF report
 *   gpr inject <workload> <gpu> <structure> <bit> <cycle>
 *              [behavior] [pattern]  single deterministic injection
 *   gpr study [flags]                sharded grid study with
 *                                    checkpoint/resume (see --help)
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "common/string_utils.hh"
#include "core/bench_cli.hh"
#include "core/export.hh"
#include "core/framework.hh"
#include "core/orchestrator.hh"
#include "isa/disassembler.hh"
#include "reliability/access_profile.hh"
#include "reliability/fault_injector.hh"
#include "sim/gpu.hh"
#include "sim/structure_registry.hh"
#include "workloads/workloads.hh"

namespace {

using namespace gpr;

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  gpr list\n"
        "  gpr info <gpu>\n"
        "  gpr disasm <workload> <gpu>\n"
        "  gpr run <workload> <gpu>\n"
        "  gpr profile <workload> <gpu>\n"
        "  gpr analyze <workload> <gpu> [injections] [--json]\n"
        "  gpr inject <workload> <gpu> <structure> <bit> <cycle>\n"
        "             [behavior] [pattern]\n"
        "             (behavior: transient, stuck-at-0, stuck-at-1,\n"
        "              intermittent [fixed period 16, active 8];\n"
        "              pattern: single, adjacent-double, adjacent-quad)\n"
        "  gpr study [--spec=FILE] [--dump-spec] [--dry-run]\n"
        "            [--workloads=a,b] [--gpus=a,b] [--injections=N]\n"
        "            [--margin=M] [--confidence=C] [--max-injections=N]\n"
        "            [--structures=a,b] [--jobs=N] [--shards=N]\n"
        "            [--checkpoints=N] [--store=FILE] [--resume[=FILE]]\n"
        "            [--ace-only] [--json] [--csv]\n"
        "            (--margin > 0: adaptive stopping — inject until\n"
        "             every rate's CI half-width <= M)\n"
        "gpus: 7970, fx5600, fx5800, gtx480\n"
        "structures (canonical or short name):\n");
    for (const StructureSpec& spec : structureRegistry()) {
        std::fprintf(stderr, "  %-22s %s\n",
                     std::string(spec.name).c_str(),
                     std::string(spec.shortName).c_str());
    }
    return 2;
}

int
cmdList()
{
    std::printf("benchmarks:\n");
    for (auto name : allWorkloadNames()) {
        const auto wl = makeWorkload(name);
        std::printf("  %-10s %s\n", std::string(name).c_str(),
                    wl->usesLocalMemory() ? "(uses local memory)" : "");
    }
    std::printf("gpus:\n");
    for (GpuModel m : allGpuModels()) {
        const GpuConfig& c = gpuConfig(m);
        std::printf("  %-16s %s\n", c.name.c_str(),
                    c.microarchitecture.c_str());
    }
    return 0;
}

int
cmdInfo(const std::string& gpu)
{
    const GpuConfig& c = gpuConfig(gpuModelFromName(gpu));
    std::printf("%s (%s, %s dialect)\n", c.name.c_str(),
                c.microarchitecture.c_str(),
                std::string(dialectName(c.dialect)).c_str());
    std::printf("  SMs/CUs:            %u\n", c.numSms);
    std::printf("  warp width:         %u\n", c.warpWidth);
    std::printf("  warps/SM:           %u\n", c.maxWarpsPerSm);
    std::printf("  blocks/SM:          %u\n", c.maxBlocksPerSm);
    std::printf("  register file/SM:   %u words (%u KB), chip total %.1f "
                "Mbit\n",
                c.regFileWordsPerSm, c.regFileWordsPerSm * 4 / 1024,
                static_cast<double>(c.totalRegFileBits()) / (1 << 20));
    if (c.scalarRegWordsPerSm) {
        std::printf("  scalar RF/CU:       %u words\n",
                    c.scalarRegWordsPerSm);
    }
    std::printf("  local memory/SM:    %u KB, chip total %.1f Mbit\n",
                c.smemBytesPerSm / 1024,
                static_cast<double>(c.totalSmemBits()) / (1 << 20));
    std::printf("  fault targets (registry):\n");
    for (const StructureSpec& spec : structureRegistry()) {
        const std::uint64_t bits = structureBitsTotal(c, spec.id);
        if (bits == 0)
            continue;
        const char* kind = "control bits";
        if (spec.kind == StructureKind::WordStorage)
            kind = "word storage";
        else if (spec.kind == StructureKind::CacheArray)
            kind = spec.scope == StructureScope::Chip ? "cache, shared"
                                                      : "cache, per-SM";
        std::printf("    %-20s %10llu bits chip-wide (%s%s)\n",
                    std::string(spec.name).c_str(),
                    static_cast<unsigned long long>(bits), kind,
                    spec.exactDeadWindows ? ", exact dead windows" : "");
    }
    std::printf("  shader clock:       %.0f MHz\n", c.clockMhz);
    std::printf("  scheduler:          %s\n",
                c.scheduler == SchedulerKind::RoundRobin
                    ? "round-robin"
                    : "greedy-then-oldest");
    return 0;
}

int
cmdDisasm(const std::string& workload, const std::string& gpu)
{
    ReliabilityFramework fw(gpuModelFromName(gpu));
    const WorkloadInstance inst = fw.buildInstance(workload);
    std::cout << disassemble(inst.program);
    std::printf("# %u instructions, %u vregs, %u sregs, %u smem bytes\n",
                inst.program.size(), inst.program.numVRegs(),
                inst.program.numSRegs(), inst.program.smemBytes());
    std::printf("# launch: grid %ux%u, block %ux%u\n", inst.launch.gridX,
                inst.launch.gridY, inst.launch.blockX, inst.launch.blockY);
    return 0;
}

int
cmdRun(const std::string& workload, const std::string& gpu)
{
    const GpuConfig& cfg = gpuConfig(gpuModelFromName(gpu));
    ReliabilityFramework fw(cfg.model);
    const WorkloadInstance inst = fw.buildInstance(workload);
    Gpu dev(cfg);
    const RunResult r = dev.run(inst.program, inst.launch, inst.image);
    std::string why;
    const bool ok = r.clean() && verifyOutputs(inst, r.memory, &why);

    std::printf("%s on %s: %s\n", workload.c_str(), cfg.name.c_str(),
                ok ? "PASS" : ("FAIL " + why).c_str());
    std::printf("  cycles:            %llu (%.3e s @ %.0f MHz)\n",
                static_cast<unsigned long long>(r.stats.cycles),
                executionSeconds(cfg, r.stats.cycles), cfg.clockMhz);
    std::printf("  warp instructions: %llu (IPC %.2f)\n",
                static_cast<unsigned long long>(r.stats.warpInstructions),
                r.stats.ipc());
    std::printf("  global txns:       %llu   shared accesses: %llu "
                "(+%llu conflict replays)\n",
                static_cast<unsigned long long>(r.stats.globalTransactions),
                static_cast<unsigned long long>(r.stats.sharedAccesses),
                static_cast<unsigned long long>(
                    r.stats.sharedBankConflictReplays));
    std::printf("  occupancy:         RF %.1f%%  LDS %.1f%%  warps %.1f%%\n",
                100 * r.stats.avgRegFileOccupancy,
                100 * r.stats.avgSmemOccupancy,
                100 * r.stats.avgWarpOccupancy);
    std::printf("  divergence events: %llu   barriers: %llu\n",
                static_cast<unsigned long long>(r.stats.divergenceEvents),
                static_cast<unsigned long long>(r.stats.barriersExecuted));
    return ok ? 0 : 1;
}

int
cmdProfile(const std::string& workload, const std::string& gpu)
{
    const GpuConfig& cfg = gpuConfig(gpuModelFromName(gpu));
    ReliabilityFramework fw(cfg.model);
    const WorkloadInstance inst = fw.buildInstance(workload);
    const AccessProfileResult p = profileAccesses(cfg, inst);

    std::printf("%s on %s:\n", workload.c_str(), cfg.name.c_str());
    for (const StructureSpec& spec : structureRegistry()) {
        const AccessSummary& s = p.forStructure(spec.id);
        if (s.totalWords == 0)
            continue;
        std::printf("  %-20s touched %8llu/%llu units (%.2f%%)  reads "
                    "%9llu  writes %8llu  r/w %.2f  top10%% share %.0f%%\n",
                    std::string(spec.name).c_str(),
                    static_cast<unsigned long long>(s.touchedWords),
                    static_cast<unsigned long long>(s.totalWords),
                    100 * s.touchedFraction(),
                    static_cast<unsigned long long>(s.reads),
                    static_cast<unsigned long long>(s.writes),
                    s.readsPerWrite(), 100 * s.top10Share);
    }
    return 0;
}

int
cmdAnalyze(const std::string& workload, const std::string& gpu,
           const char* n_arg, bool json)
{
    ReliabilityFramework fw(gpuModelFromName(gpu));
    std::size_t injections = 400;
    if (n_arg) {
        if (const auto n = parseInt(n_arg); n && *n >= 0)
            injections = static_cast<std::size_t>(*n);
    }
    const StudySpec spec =
        StudySpecBuilder().injections(injections).build();
    const ReliabilityReport report = fw.analyze(workload, spec);
    if (json) {
        writeReportJson(std::cout, report);
        std::cout << '\n';
    } else {
        report.printSummary(std::cout);
    }
    return 0;
}

int
cmdStudy(int argc, char** argv)
{
    BenchCli cli;
    if (!cli.parse(argc, argv))
        return 2;
    if (cli.runMetaActions(std::cout))
        return 0;

    StudyProgress progress;
    const StudyResult study = runStudy(cli.spec, &progress);

    if (!cli.printStudyJson(std::cout, study)) {
        std::printf("== Fig. 1: register-file AVF ==\n");
        study.figure1().render(std::cout);
        std::printf("\n== Fig. 2: local-memory AVF ==\n");
        study.figure2().render(std::cout);
        std::printf("\n== Fig. 3: EPF ==\n");
        study.figure3().render(std::cout);
        std::printf("\n");
        study.printClaims(std::cout);
        if (cli.csv) {
            std::printf("\n");
            writeStudyCsv(std::cout, study);
        }
    }

    std::fprintf(stderr,
                 "study: %zu cells, %zu/%zu shards executed "
                 "(%zu resumed from store, %zu pruned by early "
                 "stopping), %.2f s wall, %.2f worker-s injecting\n",
                 progress.cells, progress.executedShards,
                 progress.totalShards, progress.resumedShards,
                 progress.prunedShards, progress.wallSeconds,
                 progress.shardBusySeconds);
    std::fprintf(stderr,
                 "study: %llu injections at %.1f/s wall "
                 "(%.1f/worker-s, %zu checkpoint packs)\n",
                 static_cast<unsigned long long>(
                     progress.injectionsExecuted),
                 progress.injectionsPerSecond(),
                 progress.shardBusySeconds > 0
                     ? static_cast<double>(progress.injectionsExecuted) /
                           progress.shardBusySeconds
                     : 0.0,
                 progress.checkpointPacks);
    return 0;
}

int
cmdInject(const std::string& workload, const std::string& gpu,
          const std::string& structure, const char* bit_arg,
          const char* cycle_arg, const char* behavior_arg,
          const char* pattern_arg)
{
    const GpuConfig& cfg = gpuConfig(gpuModelFromName(gpu));
    ReliabilityFramework fw(cfg.model);
    const WorkloadInstance inst = fw.buildInstance(workload);

    FaultSpec fault;
    if (!tryTargetStructureFromName(structure, fault.structure))
        return usage();

    const auto bit = parseInt(bit_arg);
    const auto cyc = parseInt(cycle_arg);
    if (!bit || !cyc || *bit < 0 || *cyc < 0)
        return usage();
    fault.bitIndex = static_cast<BitIndex>(*bit);
    fault.cycle = static_cast<Cycle>(*cyc);

    if (behavior_arg &&
        !tryFaultBehaviorFromName(behavior_arg, fault.behavior))
        return usage();
    if (pattern_arg &&
        !tryFaultPatternFromName(pattern_arg, fault.pattern))
        return usage();
    if (fault.behavior == FaultBehavior::Intermittent) {
        // No duty-cycle flags on the CLI: fix a deterministic cycle so
        // the same command line always reproduces the same run.
        fault.intermittentPeriod = 16;
        fault.intermittentActive = 8;
        fault.intermittentValue = true;
    }

    FaultInjector injector(cfg, inst);
    std::printf("golden run: %llu cycles\n",
                static_cast<unsigned long long>(injector.goldenCycles()));
    const InjectionResult r = injector.inject(fault);
    std::printf("fault: %s bit %llu @ cycle %llu (%s x %s) -> %s%s%s\n",
                std::string(targetStructureName(fault.structure)).c_str(),
                static_cast<unsigned long long>(fault.bitIndex),
                static_cast<unsigned long long>(fault.cycle),
                std::string(faultBehaviorName(fault.behavior)).c_str(),
                std::string(faultPatternName(fault.pattern)).c_str(),
                std::string(faultOutcomeName(r.outcome)).c_str(),
                r.trap != TrapKind::None ? " / " : "",
                r.trap != TrapKind::None
                    ? std::string(trapKindName(r.trap)).c_str()
                    : "");
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "info" && argc == 3)
            return cmdInfo(argv[2]);
        if (cmd == "disasm" && argc == 4)
            return cmdDisasm(argv[2], argv[3]);
        if (cmd == "run" && argc == 4)
            return cmdRun(argv[2], argv[3]);
        if (cmd == "profile" && argc == 4)
            return cmdProfile(argv[2], argv[3]);
        if (cmd == "analyze" && argc >= 4) {
            bool json = false;
            const char* n_arg = nullptr;
            for (int i = 4; i < argc; ++i) {
                if (std::string(argv[i]) == "--json")
                    json = true;
                else
                    n_arg = argv[i];
            }
            return cmdAnalyze(argv[2], argv[3], n_arg, json);
        }
        if (cmd == "inject" && argc >= 7 && argc <= 9) {
            return cmdInject(argv[2], argv[3], argv[4], argv[5], argv[6],
                             argc > 7 ? argv[7] : nullptr,
                             argc > 8 ? argv[8] : nullptr);
        }
        if (cmd == "study")
            return cmdStudy(argc - 1, argv + 1);
    } catch (const gpr::FatalError& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
