/**
 * @file
 * gpr_lint — the repository's determinism & concurrency checker.
 *
 * Every headline result of this codebase (bit-identical campaigns at any
 * --jobs/--shards/resume history, cross-engine differential gates) rests
 * on a handful of invariants that no compiler enforces.  gpr_lint
 * mechanically rejects the patterns that break them, as named rules:
 *
 *  - **D1 nondeterminism-source**: no std::random_device, rand()/srand(),
 *    time()/clock(), default-seeded standard engines, or clock reads
 *    (steady_clock::now() & friends) — except in files that declare
 *    themselves part of the timing/progress whitelist with
 *    `// gpr:lint-allow-file(D1): <why>` (wall-clock diagnostics only,
 *    never feeding results).
 *  - **D2 address-ordered-container**: no pointer-keyed std::map/std::set
 *    (iteration order = allocation order), and no range-for iteration
 *    over std::unordered_{map,set} (hash-seed/rehash order): anything an
 *    unordered walk feeds — exported results, hashes, RNG draws — becomes
 *    order-dependent.  Order-insensitive folds suppress per-site.
 *  - **D3 raw-thread**: no std::thread/std::jthread construction,
 *    std::async, or .detach() outside common/worker_pool.* — all
 *    parallelism goes through the shared WorkerPool so campaigns stay
 *    deadlock-free and deterministic by (seed, index) decomposition.
 *  - **D4 unguarded-shared-state**: `mutable` members and non-const
 *    static objects must be atomics / sync primitives, or carry a
 *    `// gpr:guarded_by(<discipline>)` annotation naming the mutex or
 *    single-writer argument that makes them safe.
 *  - **D5 float-accumulation-order**: in statistics paths, floating-point
 *    sums folded inside range-for loops (and std::accumulate over
 *    floats) must go through the fixed-order reducers in
 *    common/statistics.* (fixedOrderSum / NeumaierSum), so the reduction
 *    order is explicit and container-independent.
 *
 * Any finding is suppressible at the site with
 * `// gpr:lint-allow(<rule>[,<rule>...]): <why>` on the same or the
 * immediately preceding line, or file-wide with
 * `// gpr:lint-allow-file(<rule>): <why>`.
 *
 * The checker is token-level by design: it lexes real C++ (comments,
 * raw strings, preprocessor lines) but does not build an AST, so it can
 * run on any file of the repository in milliseconds with zero compiler
 * dependencies.  The curated .clang-tidy config covers the AST-shaped
 * checks where clang-tidy is available.
 */

#ifndef GPR_LINT_LINT_HH
#define GPR_LINT_LINT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gpr_lint {

enum class Rule : std::uint8_t
{
    D1_NondeterminismSource,
    D2_AddressOrderedContainer,
    D3_RawThread,
    D4_UnguardedSharedState,
    D5_FloatAccumulationOrder,
    NumRules,
};

constexpr std::size_t kNumRules =
    static_cast<std::size_t>(Rule::NumRules);

std::string_view ruleName(Rule r);    ///< "D1" .. "D5"
std::string_view ruleSummary(Rule r); ///< one-line description
/** Rule from "D1".."D5" (case-insensitive); NumRules when unknown. */
Rule ruleFromName(std::string_view name);

struct Finding
{
    Rule rule = Rule::NumRules;
    std::string file;
    std::size_t line = 0;
    std::string message;
};

struct LintOptions
{
    /** Bitmask of enabled rules (bit i = rule i); default all. */
    std::uint32_t enabled = (1u << kNumRules) - 1;

    /** Path substrings owning raw threads (exempt from D3). */
    std::vector<std::string> threadOwnerPaths = {"common/worker_pool."};

    /**
     * Path substrings of the "statistics paths" D5 applies to: the files
     * whose floating-point reductions feed exported rates, figures, and
     * claims.
     */
    std::vector<std::string> statsPaths = {
        "common/statistics", "reliability/", "core/comparison",
        "core/export",       "core/orchestrator",
    };

    bool
    ruleEnabled(Rule r) const
    {
        return enabled & (1u << static_cast<std::uint32_t>(r));
    }
};

/** Lint @p source as file @p file.  Findings are ordered by line. */
std::vector<Finding> lintSource(std::string_view file,
                                std::string_view source,
                                const LintOptions& options = {});

/** Lint a file on disk (throws gpr::FatalError if unreadable). */
std::vector<Finding> lintFile(const std::string& path,
                              const LintOptions& options = {});

/**
 * The unique source files of a compile_commands.json (absolute paths,
 * in document order, duplicates removed).  Only .cc/.cpp/.cxx/.hh/.hpp/.h
 * entries are returned; throws gpr::FatalError on a malformed database.
 */
std::vector<std::string> filesFromCompileCommands(
    const std::string& path);

/**
 * Expand @p inputs into the lint work-list: files are taken as-is,
 * directories are walked recursively for .cc and .hh sources (plus
 * .cpp/.hpp/.h/.cxx),
 * duplicates removed while preserving first-seen order.
 */
std::vector<std::string> expandInputs(
    const std::vector<std::string>& inputs);

} // namespace gpr_lint

#endif // GPR_LINT_LINT_HH
