#include "gpr_lint/lexer.hh"

#include <cctype>

namespace gpr_lint {
namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentBody(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Longest-first multi-char punctuators the rules care to see as one
 *  token (everything else lexes one char at a time, which is fine for
 *  pattern matching). */
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "+=", "-=",
    "*=",  "/=",  "%=",  "&=",  "|=", "^=", "==", "!=", "<=", ">=",
    "&&",  "||",  "<<",
    // NB: ">>" is deliberately absent — it closes nested templates far
    // more often than it shifts, and the template-argument scanner wants
    // two '>' tokens.
};

} // namespace

LexResult
lex(std::string_view file, std::string_view source)
{
    (void)file;
    LexResult out;
    std::size_t i = 0;
    std::size_t line = 1;
    const std::size_t n = source.size();
    bool at_line_start = true; // only whitespace seen on this line so far

    auto peek = [&](std::size_t k) -> char {
        return i + k < n ? source[i + k] : '\0';
    };

    while (i < n) {
        const char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            at_line_start = true;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
            ++i;
            continue;
        }

        // ---- comments -------------------------------------------------
        if (c == '/' && peek(1) == '/') {
            std::size_t j = i + 2;
            while (j < n && source[j] != '\n')
                ++j;
            out.comments.push_back(
                {std::string(source.substr(i + 2, j - i - 2)), line, line});
            i = j;
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            const std::size_t start_line = line;
            std::size_t j = i + 2;
            while (j + 1 < n && !(source[j] == '*' && source[j + 1] == '/')) {
                if (source[j] == '\n')
                    ++line;
                ++j;
            }
            const std::size_t end = j + 1 < n ? j : n;
            out.comments.push_back(
                {std::string(source.substr(i + 2, end - i - 2)), start_line,
                 line});
            i = j + 1 < n ? j + 2 : n;
            at_line_start = false;
            continue;
        }

        // ---- preprocessor lines ---------------------------------------
        if (c == '#' && at_line_start) {
            std::size_t j = i + 1;
            while (j < n && (source[j] == ' ' || source[j] == '\t'))
                ++j;
            std::size_t d = j;
            while (d < n && isIdentBody(source[d]))
                ++d;
            out.tokens.push_back(
                {TokKind::Preproc, std::string(source.substr(j, d - j)),
                 line});
            // Swallow to end of line, honouring splices and comments.
            while (j < n && source[j] != '\n') {
                if (source[j] == '\\' && j + 1 < n && source[j + 1] == '\n') {
                    ++line;
                    j += 2;
                    continue;
                }
                if (source[j] == '/' && j + 1 < n && source[j + 1] == '/') {
                    while (j < n && source[j] != '\n')
                        ++j;
                    break;
                }
                ++j;
            }
            i = j;
            continue;
        }
        at_line_start = false;

        // ---- identifiers / keywords / literal prefixes ----------------
        if (isIdentStart(c)) {
            std::size_t j = i + 1;
            while (j < n && isIdentBody(source[j]))
                ++j;
            std::string_view word = source.substr(i, j - i);
            // String/char prefix (L, u, U, u8, R, LR, uR, u8R, ...)?
            if (j < n && (source[j] == '"' || source[j] == '\'') &&
                word.size() <= 3 &&
                word.find_first_not_of("LuUR8") == std::string_view::npos) {
                const bool raw = word.back() == 'R' && source[j] == '"';
                if (raw) {
                    // R"delim( ... )delim"
                    std::size_t k = j + 1;
                    std::string delim;
                    while (k < n && source[k] != '(')
                        delim += source[k++];
                    const std::string close = ")" + delim + "\"";
                    std::size_t e = source.find(close, k);
                    if (e == std::string_view::npos)
                        e = n;
                    else
                        e += close.size();
                    for (std::size_t p = j; p < e && p < n; ++p)
                        if (source[p] == '\n')
                            ++line;
                    out.tokens.push_back({TokKind::String, "", line});
                    i = e;
                    continue;
                }
                // Fall through: lex the quoted literal below from j.
                i = j;
                // (prefix dropped; the rules never need it)
                goto quoted;
            }
            out.tokens.push_back({TokKind::Identifier, std::string(word),
                                  line});
            i = j;
            continue;
        }

        // ---- numbers --------------------------------------------------
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
            std::size_t j = i + 1;
            while (j < n && (isIdentBody(source[j]) || source[j] == '.' ||
                             ((source[j] == '+' || source[j] == '-') &&
                              (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                               source[j - 1] == 'p' ||
                               source[j - 1] == 'P')))) {
                ++j;
            }
            out.tokens.push_back(
                {TokKind::Number, std::string(source.substr(i, j - i)),
                 line});
            i = j;
            continue;
        }

        // ---- quoted literals ------------------------------------------
        if (c == '"' || c == '\'') {
        quoted:
            const char q = source[i];
            std::size_t j = i + 1;
            while (j < n && source[j] != q) {
                if (source[j] == '\\' && j + 1 < n)
                    ++j;
                else if (source[j] == '\n')
                    break; // unterminated: stop at the line end
                ++j;
            }
            out.tokens.push_back({q == '"' ? TokKind::String : TokKind::Char,
                                  "", line});
            i = j < n ? j + 1 : n;
            continue;
        }

        // ---- punctuators ----------------------------------------------
        {
            std::string_view rest = source.substr(i);
            std::string text(1, c);
            for (std::string_view p : kPuncts) {
                if (rest.substr(0, p.size()) == p) {
                    text = std::string(p);
                    break;
                }
            }
            out.tokens.push_back({TokKind::Punct, text, line});
            i += text.size();
        }
    }
    return out;
}

} // namespace gpr_lint
