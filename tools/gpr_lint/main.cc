/**
 * @file
 * gpr_lint CLI.  Typical invocations:
 *
 *     gpr_lint --compile-commands=build/compile_commands.json
 *     gpr_lint src tools
 *     gpr_lint --rules=D1,D3 src/reliability/campaign.cc
 *
 * Exit status: 0 when clean, 1 when any finding fired, 2 on usage or
 * I/O errors.  Findings print as `file:line: [Dn] message`; pass
 * --output=FILE to also write them to a report file (CI artifact).
 */

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "gpr_lint/lint.hh"

namespace {

int
usage(std::ostream& os)
{
    os << "usage: gpr_lint [options] [file-or-dir ...]\n"
          "  --compile-commands=FILE  lint every TU of a CMake compile "
          "database\n"
          "  --rules=D1,D2,...        run only the named rules (default "
          "all)\n"
          "  --output=FILE            also write findings to FILE\n"
          "  --list-rules             print the rule catalogue and exit\n"
          "  --quiet                  no summary line, findings only\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace gpr_lint;

    LintOptions options;
    std::vector<std::string> inputs;
    std::string compile_commands;
    std::string output_path;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* prefix) {
            return arg.substr(std::strlen(prefix));
        };
        if (arg == "--help" || arg == "-h")
            return usage(std::cout), 0;
        if (arg == "--list-rules") {
            for (std::size_t r = 0; r < kNumRules; ++r) {
                const Rule rule = static_cast<Rule>(r);
                std::cout << ruleName(rule) << "  " << ruleSummary(rule)
                          << "\n";
            }
            return 0;
        }
        if (arg.rfind("--compile-commands=", 0) == 0) {
            compile_commands = value("--compile-commands=");
        } else if (arg.rfind("--rules=", 0) == 0) {
            options.enabled = 0;
            std::string list = value("--rules=");
            std::size_t pos = 0;
            while (pos < list.size()) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                const Rule r =
                    ruleFromName(list.substr(pos, comma - pos));
                if (r == Rule::NumRules) {
                    std::cerr << "gpr_lint: unknown rule '"
                              << list.substr(pos, comma - pos) << "'\n";
                    return 2;
                }
                options.enabled |=
                    1u << static_cast<std::uint32_t>(r);
                pos = comma + 1;
            }
        } else if (arg.rfind("--output=", 0) == 0) {
            output_path = value("--output=");
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "gpr_lint: unknown option " << arg << "\n";
            return usage(std::cerr);
        } else {
            inputs.push_back(arg);
        }
    }

    try {
        std::vector<std::string> files;
        if (!compile_commands.empty())
            files = filesFromCompileCommands(compile_commands);
        for (std::string& f : expandInputs(inputs))
            files.push_back(std::move(f));
        // The compile database and explicit inputs may overlap — and
        // disagree on spelling (the database is absolute, a walked
        // `src` is relative), so dedup on the canonical path while
        // keeping the first-seen spelling for reporting.
        {
            std::vector<std::string> unique;
            std::vector<std::string> seen;
            for (std::string& f : files) {
                std::error_code ec;
                std::string canon =
                    std::filesystem::weakly_canonical(f, ec).string();
                if (ec || canon.empty())
                    canon = f;
                if (std::find(seen.begin(), seen.end(), canon) !=
                    seen.end())
                    continue;
                seen.push_back(std::move(canon));
                unique.push_back(std::move(f));
            }
            files.swap(unique);
        }
        if (files.empty()) {
            std::cerr << "gpr_lint: no input files (pass paths or "
                         "--compile-commands)\n";
            return 2;
        }

        std::vector<Finding> findings;
        for (const std::string& f : files) {
            std::vector<Finding> fs = lintFile(f, options);
            findings.insert(findings.end(),
                            std::make_move_iterator(fs.begin()),
                            std::make_move_iterator(fs.end()));
        }

        std::ofstream report;
        if (!output_path.empty()) {
            report.open(output_path);
            if (!report) {
                std::cerr << "gpr_lint: cannot write " << output_path
                          << "\n";
                return 2;
            }
        }
        for (const Finding& f : findings) {
            const std::string line =
                f.file + ":" + std::to_string(f.line) + ": [" +
                std::string(ruleName(f.rule)) + "] " + f.message;
            std::cout << line << "\n";
            if (report.is_open())
                report << line << "\n";
        }
        if (!quiet) {
            std::cout << "gpr_lint: " << files.size() << " files, "
                      << findings.size() << " finding"
                      << (findings.size() == 1 ? "" : "s") << "\n";
        }
        if (report.is_open())
            report << "gpr_lint: " << files.size() << " files, "
                   << findings.size() << " findings\n";
        return findings.empty() ? 0 : 1;
    } catch (const gpr::FatalError& e) {
        std::cerr << e.what() << "\n";
        return 2;
    }
}
