/**
 * @file
 * A minimal C++ tokenizer for gpr_lint.
 *
 * gpr_lint does not parse C++ — it pattern-matches determinism- and
 * concurrency-relevant constructs over a token stream.  The lexer's job
 * is the part regexes get wrong: comments (which carry the lint's
 * annotation grammar and must never be matched as code), string/char
 * literals including raw strings, and preprocessor lines, all with
 * accurate line numbers.
 */

#ifndef GPR_LINT_LEXER_HH
#define GPR_LINT_LEXER_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace gpr_lint {

enum class TokKind
{
    Identifier, ///< identifiers and keywords (the rules tell them apart)
    Number,
    String,  ///< string literal (any prefix, raw or not), contents dropped
    Char,    ///< character literal
    Punct,   ///< one punctuator character or multi-char operator
    Preproc, ///< one whole preprocessor line (text = directive name)
};

struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    std::size_t line = 0;
};

/** One comment, kept separate from the token stream: the rules consult
 *  comments only through the annotation grammar. */
struct Comment
{
    std::string text; ///< without the // or slash-star delimiters
    std::size_t line = 0;      ///< first line of the comment
    std::size_t end_line = 0;  ///< last line (== line for //-comments)
};

struct LexResult
{
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

/** Tokenize @p source (named @p file for diagnostics only).  Never
 *  throws on malformed input — an unterminated literal lexes to the end
 *  of file; lint rules degrade gracefully. */
LexResult lex(std::string_view file, std::string_view source);

} // namespace gpr_lint

#endif // GPR_LINT_LEXER_HH
