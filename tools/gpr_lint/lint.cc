#include "gpr_lint/lint.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.hh"
#include "core/export.hh"
#include "gpr_lint/lexer.hh"

namespace gpr_lint {
namespace {

constexpr std::array<std::string_view, kNumRules> kRuleNames = {
    "D1", "D2", "D3", "D4", "D5",
};

constexpr std::array<std::string_view, kNumRules> kRuleSummaries = {
    "no nondeterminism sources (random_device, rand, time, clock reads, "
    "default-seeded engines)",
    "no pointer-keyed ordered containers; no iteration over "
    "unordered_{map,set}",
    "no raw std::thread / std::async / detach outside "
    "common/worker_pool.*",
    "mutable members and static objects must be atomic, a sync "
    "primitive, or carry // gpr:guarded_by(...)",
    "float accumulation in statistics paths must use the fixed-order "
    "reducers in common/statistics.*",
};

std::string
lower(std::string_view s)
{
    std::string out(s);
    for (char& c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
pathMatchesAny(std::string_view file,
               const std::vector<std::string>& patterns)
{
    for (const std::string& p : patterns)
        if (file.find(p) != std::string_view::npos)
            return true;
    return false;
}

// ---------------------------------------------------------------------
// Annotation grammar (lives in comments):
//   gpr:lint-allow(D1[,D2...])[: why]       suppress at this/next line
//   gpr:lint-allow-file(D1[,D2...])[: why]  suppress for the whole file
//   gpr:guarded_by(<discipline>)            D4 guard declaration

struct Annotations
{
    std::uint32_t file_allow = 0; ///< rule bitmask
    /** line -> rule bitmask of per-site allows effective there. */
    std::vector<std::pair<std::size_t, std::uint32_t>> line_allow;
    /** Lines at which a gpr:guarded_by annotation is effective. */
    std::set<std::size_t> guarded;

    bool
    allowed(Rule r, std::size_t line) const
    {
        const std::uint32_t bit = 1u << static_cast<std::uint32_t>(r);
        if (file_allow & bit)
            return true;
        for (const auto& [l, mask] : line_allow)
            if (l == line && (mask & bit))
                return true;
        return false;
    }

    bool
    guardedInRange(std::size_t first, std::size_t last) const
    {
        auto it = guarded.lower_bound(first);
        return it != guarded.end() && *it <= last;
    }
};

/** Parse a rule list "D1,D2" at @p pos (just past the '(') into a
 *  bitmask; empty/unknown names are ignored. */
std::uint32_t
parseRuleMask(std::string_view text, std::size_t pos)
{
    std::uint32_t mask = 0;
    while (pos < text.size() && text[pos] != ')') {
        while (pos < text.size() && (text[pos] == ' ' || text[pos] == ','))
            ++pos;
        std::size_t end = pos;
        while (end < text.size() && text[end] != ',' && text[end] != ')' &&
               text[end] != ' ')
            ++end;
        const Rule r = ruleFromName(text.substr(pos, end - pos));
        if (r != Rule::NumRules)
            mask |= 1u << static_cast<std::uint32_t>(r);
        pos = end;
        if (pos < text.size() && text[pos] != ')')
            ++pos;
    }
    return mask;
}

Annotations
collectAnnotations(const std::vector<Comment>& comments)
{
    Annotations a;
    for (const Comment& c : comments) {
        for (std::size_t pos = c.text.find("gpr:");
             pos != std::string::npos;
             pos = c.text.find("gpr:", pos + 4)) {
            const std::string_view rest =
                std::string_view(c.text).substr(pos);
            if (rest.rfind("gpr:lint-allow-file(", 0) == 0) {
                a.file_allow |= parseRuleMask(
                    rest, std::string_view("gpr:lint-allow-file(").size());
            } else if (rest.rfind("gpr:lint-allow(", 0) == 0) {
                const std::uint32_t mask = parseRuleMask(
                    rest, std::string_view("gpr:lint-allow(").size());
                // Effective on every line the comment spans plus the
                // next one, so both trailing and preceding-line
                // placements work.
                for (std::size_t l = c.line; l <= c.end_line + 1; ++l)
                    a.line_allow.emplace_back(l, mask);
            } else if (rest.rfind("gpr:guarded_by(", 0) == 0) {
                for (std::size_t l = c.line; l <= c.end_line + 1; ++l)
                    a.guarded.insert(l);
            }
        }
    }
    return a;
}

// ---------------------------------------------------------------------
// Token-walk helpers

struct Walker
{
    const std::vector<Token>& t;

    bool
    is(std::size_t i, TokKind k, std::string_view text) const
    {
        return i < t.size() && t[i].kind == k && t[i].text == text;
    }
    bool
    id(std::size_t i, std::string_view name) const
    {
        return is(i, TokKind::Identifier, name);
    }
    bool
    punct(std::size_t i, std::string_view p) const
    {
        return is(i, TokKind::Punct, p);
    }
    bool
    isId(std::size_t i) const
    {
        return i < t.size() && t[i].kind == TokKind::Identifier;
    }
    /** t[i-1].text if it exists, else "". */
    std::string_view
    prevText(std::size_t i) const
    {
        return i > 0 ? std::string_view(t[i - 1].text)
                     : std::string_view{};
    }
    std::string_view
    nextText(std::size_t i) const
    {
        return i + 1 < t.size() ? std::string_view(t[i + 1].text)
                                : std::string_view{};
    }

    /** Token index just past a balanced <...> starting at @p i (which
     *  must be '<'); i unchanged if the angle never closes. */
    std::size_t
    skipAngles(std::size_t i) const
    {
        int depth = 0;
        for (std::size_t j = i; j < t.size(); ++j) {
            if (t[j].kind != TokKind::Punct)
                continue;
            if (t[j].text == "<")
                ++depth;
            else if (t[j].text == ">" && --depth == 0)
                return j + 1;
            else if (t[j].text == ";") // gave up: not template args
                return i;
        }
        return i;
    }
};

/** Half-open token ranges of every range-for body, plus the line of the
 *  `for` and the tokens of the range expression. */
struct RangeFor
{
    std::size_t body_begin = 0;
    std::size_t body_end = 0;
    std::size_t expr_begin = 0;
    std::size_t expr_end = 0;
    std::size_t line = 0;
};

std::vector<RangeFor>
findRangeFors(const Walker& w)
{
    std::vector<RangeFor> out;
    const auto& t = w.t;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!w.id(i, "for") || !w.punct(i + 1, "("))
            continue;
        int depth = 0;
        std::size_t colon = 0, close = 0;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
            if (t[j].kind != TokKind::Punct)
                continue;
            if (t[j].text == "(") {
                ++depth;
            } else if (t[j].text == ")") {
                if (--depth == 0) {
                    close = j;
                    break;
                }
            } else if (t[j].text == ":" && depth == 1 && colon == 0) {
                colon = j;
            }
        }
        if (close == 0 || colon == 0)
            continue; // classic for, or unbalanced
        RangeFor rf;
        rf.line = t[i].line;
        rf.expr_begin = colon + 1;
        rf.expr_end = close;
        if (w.punct(close + 1, "{")) {
            int bd = 0;
            std::size_t j = close + 1;
            for (; j < t.size(); ++j) {
                if (t[j].kind != TokKind::Punct)
                    continue;
                if (t[j].text == "{")
                    ++bd;
                else if (t[j].text == "}" && --bd == 0)
                    break;
            }
            rf.body_begin = close + 2;
            rf.body_end = j;
        } else {
            std::size_t j = close + 1;
            int bd = 0;
            for (; j < t.size(); ++j) {
                if (t[j].kind != TokKind::Punct)
                    continue;
                if (t[j].text == "(" || t[j].text == "{" ||
                    t[j].text == "[")
                    ++bd;
                else if (t[j].text == ")" || t[j].text == "}" ||
                         t[j].text == "]")
                    --bd;
                else if (t[j].text == ";" && bd == 0)
                    break;
            }
            rf.body_begin = close + 1;
            rf.body_end = j;
        }
        out.push_back(rf);
    }
    return out;
}

// ---------------------------------------------------------------------
// Rules

void
emit(std::vector<Finding>& out, const Annotations& a, Rule r,
     std::string_view file, std::size_t line, std::string message)
{
    if (a.allowed(r, line))
        return;
    out.push_back({r, std::string(file), line, std::move(message)});
}

constexpr std::string_view kRandCalls[] = {
    "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48", "random",
};
constexpr std::string_view kTimeCalls[] = {
    "time", "clock", "gettimeofday", "localtime", "gmtime",
};
constexpr std::string_view kStdEngines[] = {
    "mt19937",       "mt19937_64",  "minstd_rand",
    "minstd_rand0",  "ranlux24",    "ranlux48",
    "knuth_b",       "default_random_engine",
};

void
ruleD1(const Walker& w, const Annotations& a, std::string_view file,
       std::vector<Finding>& out)
{
    const auto& t = w.t;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!w.isId(i))
            continue;
        const std::string& name = t[i].text;

        if (name == "random_device") {
            emit(out, a, Rule::D1_NondeterminismSource, file, t[i].line,
                 "std::random_device is a per-run entropy source; derive "
                 "seeds with deriveSeed(root, stream) instead");
            continue;
        }

        const bool called = w.nextText(i) == "(";
        const std::string_view prev = w.prevText(i);
        const bool member = prev == "." || prev == "->";
        const bool qualified = prev == "::";
        const bool std_qualified =
            qualified && i >= 2 && w.id(i - 2, "std");

        if (called && !member && (!qualified || std_qualified)) {
            for (std::string_view r : kRandCalls) {
                if (name == r) {
                    emit(out, a, Rule::D1_NondeterminismSource, file,
                         t[i].line,
                         "C library RNG " + name +
                             "() is process-global and seed-order "
                             "dependent; use gpr::Rng with a derived "
                             "seed");
                    break;
                }
            }
            for (std::string_view c : kTimeCalls) {
                if (name == c) {
                    emit(out, a, Rule::D1_NondeterminismSource, file,
                         t[i].line,
                         "wall-clock call " + name +
                             "() is nondeterministic; timing/progress "
                             "files must carry "
                             "gpr:lint-allow-file(D1)");
                    break;
                }
            }
        }

        // <chrono> clock reads: <something ending in clock>::now().
        if (name == "now" && prev == "::" && i >= 2 && w.isId(i - 2)) {
            const std::string before = lower(t[i - 2].text);
            if (before.size() >= 5 &&
                before.compare(before.size() - 5, 5, "clock") == 0) {
                emit(out, a, Rule::D1_NondeterminismSource, file,
                     t[i].line,
                     t[i - 2].text +
                         "::now() reads a wall clock; results must "
                         "never depend on time (timing/progress files "
                         "carry gpr:lint-allow-file(D1))");
            }
        }

        // Default-seeded standard engines: `mt19937 g;` / `mt19937{}`.
        for (std::string_view e : kStdEngines) {
            if (name != e)
                continue;
            const std::string_view nx = w.nextText(i);
            const bool argless_temp =
                (nx == "(" && w.punct(i + 2, ")")) ||
                (nx == "{" && w.punct(i + 2, "}"));
            const bool argless_decl =
                w.isId(i + 1) &&
                (w.punct(i + 2, ";") ||
                 (w.punct(i + 2, "{") && w.punct(i + 3, "}")));
            if (argless_temp || argless_decl) {
                emit(out, a, Rule::D1_NondeterminismSource, file,
                     t[i].line,
                     "default-seeded std::" + name +
                         " draws an implementation-defined stream; "
                         "seed explicitly from deriveSeed()");
            }
            break;
        }
    }
}

void
ruleD2(const Walker& w, const Annotations& a, std::string_view file,
       std::vector<Finding>& out)
{
    const auto& t = w.t;

    // Pointer-keyed std::map / std::set.
    constexpr std::string_view ordered[] = {"map", "set", "multimap",
                                            "multiset"};
    for (std::size_t i = 2; i < t.size(); ++i) {
        if (!w.isId(i) || w.prevText(i) != "::" || !w.id(i - 2, "std"))
            continue;
        bool is_ordered = false;
        for (std::string_view o : ordered)
            is_ordered |= t[i].text == o;
        if (!is_ordered || !w.punct(i + 1, "<"))
            continue;
        // Walk the first template argument; a trailing '*' keys the
        // container by address.
        int depth = 0;
        std::size_t last = 0;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
            if (t[j].kind == TokKind::Punct) {
                if (t[j].text == "<") {
                    ++depth;
                    continue;
                }
                if (t[j].text == ">") {
                    if (--depth == 0)
                        break;
                    continue;
                }
                if (t[j].text == "," && depth == 1)
                    break;
                if (t[j].text == ";")
                    break; // comparison, not a template
            }
            last = j;
        }
        if (last && w.punct(last, "*")) {
            emit(out, a, Rule::D2_AddressOrderedContainer, file, t[i].line,
                 "std::" + t[i].text +
                     " keyed by a pointer iterates in allocation-address "
                     "order, which differs run to run; key by a stable "
                     "id instead");
        }
    }

    // Names declared with an unordered container type in this file.
    std::unordered_set<std::string> unordered_names;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!w.isId(i) || t[i].text.rfind("unordered_", 0) != 0)
            continue;
        std::size_t j = i + 1;
        if (w.punct(j, "<"))
            j = w.skipAngles(j);
        while (w.punct(j, "&") || w.punct(j, "*") || w.id(j, "const"))
            ++j;
        if (w.isId(j) && !w.punct(j + 1, "(")) // not a function name
            unordered_names.insert(t[j].text);
    }

    for (const RangeFor& rf : findRangeFors(w)) {
        for (std::size_t j = rf.expr_begin; j < rf.expr_end; ++j) {
            if (!w.isId(j))
                continue;
            const bool direct = t[j].text.rfind("unordered_", 0) == 0;
            const bool named = unordered_names.count(t[j].text) > 0;
            if (direct || named) {
                emit(out, a, Rule::D2_AddressOrderedContainer, file,
                     rf.line,
                     "iteration over unordered container '" + t[j].text +
                         "' visits elements in hash/rehash order; sort "
                         "the keys first, or suppress if the fold is "
                         "provably order-insensitive");
                break;
            }
        }
    }
}

void
ruleD3(const Walker& w, const Annotations& a, std::string_view file,
       const LintOptions& opts, std::vector<Finding>& out)
{
    if (pathMatchesAny(file, opts.threadOwnerPaths))
        return;
    const auto& t = w.t;
    for (std::size_t i = 2; i < t.size(); ++i) {
        if (!w.isId(i))
            continue;
        const std::string& name = t[i].text;
        if ((name == "thread" || name == "jthread") &&
            w.prevText(i) == "::" && w.id(i - 2, "std") &&
            w.nextText(i) != "::") {
            emit(out, a, Rule::D3_RawThread, file, t[i].line,
                 "raw std::" + name +
                     " outside common/worker_pool.*; submit to the "
                     "shared WorkerPool so parallelism stays "
                     "deterministic and bounded");
        }
        if (name == "async" && w.prevText(i) == "::" &&
            w.id(i - 2, "std")) {
            emit(out, a, Rule::D3_RawThread, file, t[i].line,
                 "std::async spawns unmanaged threads with "
                 "launch-policy-dependent scheduling; use the shared "
                 "WorkerPool");
        }
        if (name == "detach" &&
            (w.prevText(i) == "." || w.prevText(i) == "->") &&
            w.nextText(i) == "(") {
            emit(out, a, Rule::D3_RawThread, file, t[i].line,
                 "detach() abandons a thread past join-based "
                 "determinism barriers; threads must be joined (by the "
                 "WorkerPool)");
        }
    }
}

constexpr std::string_view kSyncTypes[] = {
    "atomic",          "atomic_flag",
    "atomic_bool",     "atomic_uint64_t",
    "mutex",           "shared_mutex",
    "recursive_mutex", "timed_mutex",
    "once_flag",       "condition_variable",
    "condition_variable_any",
};

bool
containsSyncType(const Walker& w, std::size_t begin, std::size_t end)
{
    for (std::size_t j = begin; j < end; ++j) {
        if (!w.isId(j))
            continue;
        for (std::string_view s : kSyncTypes)
            if (w.t[j].text == s)
                return true;
    }
    return false;
}

void
ruleD4(const Walker& w, const Annotations& a, std::string_view file,
       std::vector<Finding>& out)
{
    const auto& t = w.t;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!w.isId(i))
            continue;

        if (t[i].text == "mutable") {
            if (w.prevText(i) == ")")
                continue; // lambda specifier
            int depth = 0;
            std::size_t j = i + 1;
            for (; j < t.size(); ++j) {
                if (t[j].kind != TokKind::Punct)
                    continue;
                const std::string& p = t[j].text;
                if (p == "(" || p == "{" || p == "[")
                    ++depth;
                else if (p == ")" || p == "}" || p == "]")
                    --depth;
                else if (p == ";" && depth == 0)
                    break;
            }
            const std::size_t end_line =
                j < t.size() ? t[j].line : t.back().line;
            if (containsSyncType(w, i + 1, j))
                continue;
            if (a.guardedInRange(t[i].line, end_line))
                continue;
            emit(out, a, Rule::D4_UnguardedSharedState, file, t[i].line,
                 "mutable member without a guard discipline: make it "
                 "atomic or annotate // gpr:guarded_by(<mutex or "
                 "single-writer argument>)");
        }

        if (t[i].text == "static") {
            // Walk the declaration head; '(' at angle depth 0 means a
            // function (not checked), and any cv/sync/thread_local
            // keyword makes the object safe.
            int angles = 0;
            bool is_object = false;
            std::size_t j = i + 1;
            for (; j < t.size(); ++j) {
                if (t[j].kind == TokKind::Punct) {
                    const std::string& p = t[j].text;
                    if (p == "<") {
                        ++angles;
                        continue;
                    }
                    if (p == ">") {
                        --angles;
                        continue;
                    }
                    if (angles > 0)
                        continue;
                    if (p == "(")
                        break; // function declaration/definition
                    if (p == ";" || p == "=" || p == "{") {
                        is_object = true;
                        break;
                    }
                }
            }
            if (!is_object || j >= t.size())
                continue;
            bool safe = containsSyncType(w, i + 1, j);
            for (std::size_t k = i + 1; k < j && !safe; ++k) {
                safe = w.id(k, "const") || w.id(k, "constexpr") ||
                       w.id(k, "constinit") || w.id(k, "thread_local");
            }
            // `thread_local static` orderings put the keyword first.
            if (i > 0 && w.id(i - 1, "thread_local"))
                safe = true;
            if (safe)
                continue;
            if (a.guardedInRange(t[i].line, t[j].line))
                continue;
            emit(out, a, Rule::D4_UnguardedSharedState, file, t[i].line,
                 "non-const static object is cross-thread shared state: "
                 "make it const/atomic or annotate // "
                 "gpr:guarded_by(...) with the discipline that guards "
                 "it");
        }
    }
}

bool
floatyName(const std::string& name)
{
    const std::string l = lower(name);
    return l.find("seconds") != std::string::npos ||
           l.find("avf") != std::string::npos || l == "weight" ||
           l == "weights";
}

void
ruleD5(const Walker& w, const Annotations& a, std::string_view file,
       const LintOptions& opts, std::vector<Finding>& out)
{
    if (!pathMatchesAny(file, opts.statsPaths))
        return;
    const auto& t = w.t;

    // Names declared floating-point in this file (locals, params,
    // members, vector<double> elements), keyed to the earliest
    // declaration's token index: a name only counts as floating-point
    // at use sites *after* its declaration, so an unrelated `double&
    // out` parameter later in the file does not taint an earlier
    // `std::string out`.
    std::unordered_map<std::string, std::size_t> float_decls;
    auto record = [&](const std::string& name, std::size_t idx) {
        auto [it, fresh] = float_decls.emplace(name, idx);
        if (!fresh && idx < it->second)
            it->second = idx;
    };
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (w.id(i, "double") || w.id(i, "float")) {
            std::size_t j = i + 1;
            while (w.punct(j, "&") || w.punct(j, "*"))
                ++j;
            if (w.isId(j)) {
                const std::string_view nx = w.nextText(j);
                if (nx == "=" || nx == ";" || nx == "," || nx == ")" ||
                    nx == "{")
                    record(t[j].text, j);
            }
        }
        if (w.id(i, "vector") && w.punct(i + 1, "<") &&
            (w.id(i + 2, "double") || w.id(i + 2, "float")) &&
            w.punct(i + 3, ">")) {
            std::size_t j = i + 4;
            while (w.punct(j, "&") || w.punct(j, "*") || w.id(j, "const"))
                ++j;
            if (w.isId(j))
                record(t[j].text, j);
        }
    }

    auto is_floaty = [&](const std::string& name, std::size_t use_idx) {
        if (floatyName(name))
            return true;
        const auto it = float_decls.find(name);
        return it != float_decls.end() && it->second < use_idx;
    };

    const std::vector<RangeFor> fors = findRangeFors(w);
    auto in_rangefor_body = [&](std::size_t idx) {
        for (const RangeFor& rf : fors)
            if (idx >= rf.body_begin && idx < rf.body_end)
                return true;
        return false;
    };

    for (std::size_t i = 1; i < t.size(); ++i) {
        if (t[i].kind == TokKind::Punct &&
            (t[i].text == "+=" || t[i].text == "-=") &&
            in_rangefor_body(i)) {
            // String/char concatenation is never float math.
            if (i + 1 < t.size() && (t[i + 1].kind == TokKind::String ||
                                     t[i + 1].kind == TokKind::Char))
                continue;
            // Walk the LHS access chain backwards (a.b, a->b, a[k].b).
            std::size_t j = i - 1;
            bool flagged = false;
            while (j > 0 && !flagged) {
                if (w.punct(j, "]")) {
                    int d = 0;
                    while (j > 0) {
                        if (w.punct(j, "]"))
                            ++d;
                        else if (w.punct(j, "[") && --d == 0)
                            break;
                        --j;
                    }
                    if (j == 0)
                        break;
                    --j;
                    continue;
                }
                if (!w.isId(j))
                    break;
                if (is_floaty(t[j].text, i)) {
                    emit(out, a, Rule::D5_FloatAccumulationOrder, file,
                         t[i].line,
                         "floating-point accumulation of '" + t[j].text +
                             "' inside a range-for folds in container "
                             "order; collect and reduce with "
                             "fixedOrderSum()/NeumaierSum "
                             "(common/statistics.hh)");
                    flagged = true;
                    break;
                }
                const std::string_view pv = w.prevText(j);
                if (pv == "." || pv == "->" || pv == "::")
                    j -= 2;
                else
                    break;
            }
        }

        if (w.id(i, "accumulate") && w.prevText(i) == "::" && i >= 2 &&
            w.id(i - 2, "std")) {
            emit(out, a, Rule::D5_FloatAccumulationOrder, file, t[i].line,
                 "std::accumulate hides the reduction order and invites "
                 "regrouping; use fixedOrderSum()/NeumaierSum for float "
                 "series (suppress for integral folds)");
        }
    }
}

} // namespace

std::string_view
ruleName(Rule r)
{
    const auto i = static_cast<std::size_t>(r);
    return i < kNumRules ? kRuleNames[i] : std::string_view("??");
}

std::string_view
ruleSummary(Rule r)
{
    const auto i = static_cast<std::size_t>(r);
    return i < kNumRules ? kRuleSummaries[i] : std::string_view{};
}

Rule
ruleFromName(std::string_view name)
{
    std::string u = lower(name);
    for (char& c : u)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    for (std::size_t i = 0; i < kNumRules; ++i)
        if (u == kRuleNames[i])
            return static_cast<Rule>(i);
    return Rule::NumRules;
}

std::vector<Finding>
lintSource(std::string_view file, std::string_view source,
           const LintOptions& options)
{
    const LexResult lexed = lex(file, source);
    const Annotations ann = collectAnnotations(lexed.comments);
    const Walker w{lexed.tokens};

    std::vector<Finding> out;
    auto run = [&](Rule r, auto&& fn) {
        if (!options.ruleEnabled(r))
            return;
        if (ann.file_allow & (1u << static_cast<std::uint32_t>(r)))
            return;
        fn();
    };
    run(Rule::D1_NondeterminismSource,
        [&] { ruleD1(w, ann, file, out); });
    run(Rule::D2_AddressOrderedContainer,
        [&] { ruleD2(w, ann, file, out); });
    run(Rule::D3_RawThread,
        [&] { ruleD3(w, ann, file, options, out); });
    run(Rule::D4_UnguardedSharedState,
        [&] { ruleD4(w, ann, file, out); });
    run(Rule::D5_FloatAccumulationOrder,
        [&] { ruleD5(w, ann, file, options, out); });

    std::stable_sort(out.begin(), out.end(),
                     [](const Finding& a, const Finding& b) {
                         return a.line < b.line;
                     });
    return out;
}

std::vector<Finding>
lintFile(const std::string& path, const LintOptions& options)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw gpr::FatalError("gpr_lint: cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return lintSource(path, ss.str(), options);
}

std::vector<std::string>
filesFromCompileCommands(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw gpr::FatalError("gpr_lint: cannot read compile database " +
                              path);
    std::ostringstream ss;
    ss << in.rdbuf();
    const gpr::JsonValue db = gpr::parseJson(ss.str());

    std::vector<std::string> files;
    std::unordered_set<std::string> seen;
    for (const gpr::JsonValue& entry : db.items()) {
        const gpr::JsonValue* file = entry.find("file");
        if (!file)
            throw gpr::FatalError(
                "gpr_lint: compile database entry without \"file\"");
        std::filesystem::path p(file->asString());
        if (p.is_relative()) {
            if (const gpr::JsonValue* dir = entry.find("directory"))
                p = std::filesystem::path(dir->asString()) / p;
        }
        const std::string ext = p.extension().string();
        if (ext != ".cc" && ext != ".cpp" && ext != ".cxx" &&
            ext != ".hh" && ext != ".hpp" && ext != ".h")
            continue;
        std::string s = p.lexically_normal().string();
        if (seen.insert(s).second)
            files.push_back(std::move(s));
    }
    return files;
}

std::vector<std::string>
expandInputs(const std::vector<std::string>& inputs)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    std::unordered_set<std::string> seen;
    auto add = [&](const fs::path& p) {
        std::string s = p.lexically_normal().string();
        if (seen.insert(s).second)
            files.push_back(std::move(s));
    };
    for (const std::string& input : inputs) {
        const fs::path p(input);
        if (fs::is_directory(p)) {
            // Directory iteration order is filesystem-specific; sort so
            // the lint's own output is deterministic.
            std::vector<fs::path> entries;
            for (const auto& e : fs::recursive_directory_iterator(p)) {
                if (!e.is_regular_file())
                    continue;
                const std::string ext = e.path().extension().string();
                if (ext == ".cc" || ext == ".cpp" || ext == ".cxx" ||
                    ext == ".hh" || ext == ".hpp" || ext == ".h")
                    entries.push_back(e.path());
            }
            std::sort(entries.begin(), entries.end());
            for (const fs::path& e : entries)
                add(e);
        } else {
            add(p);
        }
    }
    return files;
}

} // namespace gpr_lint
