/**
 * @file
 * Ablation: the causal link between structure occupancy and AVF (the
 * paper's red-line correlation, Section III, and the "resource sizes /
 * resource occupancy" aspects of Section I).
 *
 * Two sweeps on a Fermi-class device running matrixMul:
 *  1. residency sweep — cap maxBlocksPerSm at 1/2/4/8: fewer resident
 *     blocks => lower occupancy => lower AVF;
 *  2. register-file size sweep — 8K/16K/32K/64K words per SM at fixed
 *     residency: a larger file dilutes the same live state => lower AVF
 *     (and more FIT-prone raw bits; the EPF bench shows the roll-up).
 */

#include <iostream>

#include "common/string_utils.hh"
#include "common/table.hh"
#include "core/bench_cli.hh"
#include "reliability/ace.hh"
#include "reliability/campaign.hh"
#include "workloads/workloads.hh"

namespace {

using namespace gpr;

void
sweep(const BenchCli& cli, const std::string& label,
      const std::vector<GpuConfig>& configs,
      const std::vector<std::string>& tags)
{
    TextTable table({label, "RF occupancy", "RF AVF-FI", "RF AVF-ACE",
                     "cycles"});
    const auto workload = makeWorkload("matrixMul");

    for (std::size_t i = 0; i < configs.size(); ++i) {
        const GpuConfig& cfg = configs[i];
        const WorkloadInstance inst = workload->build(cfg.dialect, {});
        const AceResult ace = runAceAnalysis(cfg, inst);
        const AceStructureResult& rf_ace =
            ace.forStructure(TargetStructure::VectorRegisterFile);

        double avf_fi = 0.0;
        if (!cli.spec.aceOnly) {
            CampaignConfig cc;
            cc.plan = cli.spec.plan;
            cc.seed = cli.spec.seed;
            const CampaignResult fi = runCampaign(
                cfg, inst, TargetStructure::VectorRegisterFile, cc);
            avf_fi = fi.avf();
        }

        table.addRow(
            {tags[i],
             strprintf("%.1f%%",
                       100.0 * ace.goldenStats.avgRegFileOccupancy),
             strprintf("%.1f%%", 100.0 * avf_fi),
             strprintf("%.1f%%", 100.0 * rf_ace.avf()),
             strprintf("%llu", static_cast<unsigned long long>(
                                   ace.goldenStats.cycles))});
    }
    table.render(std::cout);
}

} // namespace

int
main(int argc, char** argv)
{
    BenchCli cli;
    if (!cli.parse(argc, argv))
        return 1;
    if (cli.rejectMetaActions("bench_ablation_occupancy"))
        return 2;
    cli.printHeader(std::cout,
                    "Ablation - occupancy vs AVF (matrixMul on Fermi)");

    // Sweep 1: block residency cap.
    {
        std::vector<GpuConfig> configs;
        std::vector<std::string> tags;
        for (std::uint32_t blocks : {1u, 2u, 4u, 8u}) {
            GpuConfig cfg = gpuConfig(GpuModel::GeforceGtx480);
            cfg.maxBlocksPerSm = blocks;
            configs.push_back(cfg);
            tags.push_back(strprintf("%u blocks/SM", blocks));
        }
        std::cout << "-- residency sweep --\n";
        sweep(cli, "residency", configs, tags);
    }

    // Sweep 2: register-file size.
    {
        std::vector<GpuConfig> configs;
        std::vector<std::string> tags;
        for (std::uint32_t words : {8192u, 16384u, 32768u, 65536u}) {
            GpuConfig cfg = gpuConfig(GpuModel::GeforceGtx480);
            cfg.regFileWordsPerSm = words;
            configs.push_back(cfg);
            tags.push_back(strprintf("%u KB RF/SM", words * 4 / 1024));
        }
        std::cout << "-- register-file size sweep --\n";
        sweep(cli, "RF size", configs, tags);
    }
    return 0;
}
