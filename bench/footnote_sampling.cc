/**
 * @file
 * Reproduces footnote 4 of the paper: "We simulated 2,000 fault
 * injections per hardware structure, which statistically provides 2.88%
 * error margin for 99% confidence level."
 *
 * Prints the error margin as a function of sample size at several
 * confidence levels, plus the inverse (samples needed for a target
 * margin).  The n=2000 @ 99% row must read 2.88%.
 */

#include <cstdio>
#include <iostream>

#include "common/statistics.hh"
#include "common/string_utils.hh"
#include "common/table.hh"
#include "reliability/sampling.hh"

int
main()
{
    using namespace gpr;

    std::cout << "== Footnote 4 - statistical FI sample planning ==\n";

    TextTable margins({"injections", "margin @90%", "margin @95%",
                       "margin @99%"});
    for (std::size_t n : {50u, 100u, 150u, 250u, 500u, 1000u, 2000u,
                          5000u, 10000u}) {
        margins.addRow({strprintf("%zu", n),
                        strprintf("%.2f%%",
                                  100 * proportionErrorMargin(n, 0.90)),
                        strprintf("%.2f%%",
                                  100 * proportionErrorMargin(n, 0.95)),
                        strprintf("%.2f%%",
                                  100 * proportionErrorMargin(n, 0.99))});
    }
    margins.render(std::cout);

    const SamplePlan paper = paperSamplePlan();
    std::cout << strprintf(
        "paper plan: n=%zu @ %.0f%% confidence => margin %.2f%% "
        "(paper says 2.88%%)\n",
        paper.injections, 100 * paper.confidence,
        100 * paper.errorMargin());

    TextTable inverse({"target margin", "confidence", "injections needed"});
    for (double margin : {0.05, 0.0288, 0.02, 0.01}) {
        for (double conf : {0.95, 0.99}) {
            inverse.addRow(
                {strprintf("%.2f%%", 100 * margin),
                 strprintf("%.0f%%", 100 * conf),
                 strprintf("%zu", requiredSamples(margin, conf))});
        }
    }
    inverse.render(std::cout);
    return 0;
}
