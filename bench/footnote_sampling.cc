/**
 * @file
 * Reproduces footnote 4 of the paper: "We simulated 2,000 fault
 * injections per hardware structure, which statistically provides 2.88%
 * error margin for 99% confidence level."
 *
 * All arithmetic goes through the sampling subsystem
 * (reliability/sampling.hh) — SamplePlan margins, the required-N
 * solver, the Wilson/Clopper–Pearson intervals, and the adaptive
 * sequential schedule — so this bench doubles as a worked tour of the
 * statistics the campaigns run on.  The n=2000 @ 99% row must read
 * 2.88% (pinned in tests/test_paper_claims.cc).
 */

#include <cstdio>
#include <iostream>

#include "common/string_utils.hh"
#include "common/table.hh"
#include "reliability/sampling.hh"

int
main()
{
    using namespace gpr;

    std::cout << "== Footnote 4 - statistical FI sample planning ==\n";

    TextTable margins({"injections", "margin @90%", "margin @95%",
                       "margin @99%"});
    for (std::size_t n : {50u, 100u, 150u, 250u, 500u, 1000u, 2000u,
                          5000u, 10000u}) {
        auto margin_cell = [n](double confidence) {
            const SamplePlan plan{n, confidence, 0.0, 0};
            return strprintf("%.2f%%", 100 * plan.errorMargin());
        };
        margins.addRow({strprintf("%zu", n), margin_cell(0.90),
                        margin_cell(0.95), margin_cell(0.99)});
    }
    margins.render(std::cout);

    const SamplePlan paper = paperSamplePlan();
    std::cout << strprintf(
        "paper plan: n=%zu @ %.0f%% confidence => margin %.2f%% "
        "(paper says 2.88%%)\n",
        paper.injections, 100 * paper.confidence,
        100 * paper.errorMargin());

    TextTable inverse({"target margin", "confidence", "injections needed"});
    for (double margin : {0.05, 0.0288, 0.02, 0.01}) {
        for (double conf : {0.95, 0.99}) {
            inverse.addRow({strprintf("%.2f%%", 100 * margin),
                            strprintf("%.0f%%", 100 * conf),
                            strprintf("%zu",
                                      planForMargin(margin, conf)
                                          .injections)});
        }
    }
    inverse.render(std::cout);

    // The worst-case margin assumes p = 0.5; a measured campaign
    // reports the data-driven Wilson interval (and Clopper–Pearson as
    // the exact cross-check), which is what the adaptive engine
    // exploits.
    std::cout << "\nintervals at the paper plan (n=2000, 99%):\n";
    TextTable intervals({"failures", "rate", "Wilson CI", "exact CI"});
    for (std::size_t k : {0u, 20u, 100u, 500u, 1000u}) {
        const Interval w = wilsonInterval(k, paper.injections,
                                          paper.confidence);
        const Interval c = clopperPearsonInterval(k, paper.injections,
                                                  paper.confidence);
        intervals.addRow(
            {strprintf("%zu", k),
             strprintf("%.1f%%",
                       100.0 * k / static_cast<double>(paper.injections)),
             strprintf("%.2f..%.2f%%", 100 * w.lo, 100 * w.hi),
             strprintf("%.2f..%.2f%%", 100 * c.lo, 100 * c.hi)});
    }
    intervals.render(std::cout);

    std::cout << "\nadaptive stopping (margin-driven campaigns):\n";
    TextTable adaptive({"margin", "confidence", "cap", "looks",
                        "guarded conf"});
    for (double margin : {0.05, 0.0288}) {
        for (double conf : {0.95, 0.99}) {
            const SamplePlan plan = adaptivePlan(margin, conf);
            adaptive.addRow(
                {strprintf("%.2f%%", 100 * margin),
                 strprintf("%.0f%%", 100 * conf),
                 strprintf("%zu", plan.resolvedMaxInjections()),
                 strprintf("%zu", sequentialSchedule(plan).size()),
                 strprintf("%.3f%%",
                           100 * sequentialConfidence(plan))});
        }
    }
    adaptive.render(std::cout);
    return 0;
}
