/**
 * @file
 * Vulnerability breakdown bench: where in the word and when in the run do
 * non-masked faults land?
 *
 * Supports the paper's discussion of *why* the two assessment methods
 * disagree on the register file: for float kernels the FI outcomes are
 * strongly bit-position dependent (low mantissa bits masked by the output
 * tolerance, exponent/sign bits not), while conservative ACE treats all
 * 32 bits of a live word alike.
 */

#include <iostream>

#include "common/string_utils.hh"
#include "common/table.hh"
#include "core/bench_cli.hh"
#include "reliability/breakdown.hh"
#include "workloads/workloads.hh"

int
main(int argc, char** argv)
{
    using namespace gpr;

    BenchCli cli;
    if (!cli.parse(argc, argv))
        return 1;
    if (cli.rejectMetaActions("bench_breakdown_bits"))
        return 2;
    cli.printHeader(std::cout,
                    "Breakdown - AVF by bit position and run phase");

    const GpuConfig& cfg = gpuConfig(GpuModel::GeforceGtx480);
    std::vector<std::string> names = cli.spec.workloads;
    if (names.empty())
        names = {"matrixMul", "scan"}; // one float, one integer kernel

    for (const std::string& name : names) {
        const auto workload = makeWorkload(name);
        const WorkloadInstance inst = workload->build(cfg.dialect, {});
        CampaignConfig cc;
        cc.plan = cli.spec.plan;
        // Breakdown needs more samples per bucket than a plain AVF.
        cc.plan.injections = std::max<std::size_t>(cc.plan.injections * 4,
                                                   600);
        cc.seed = cli.spec.seed;
        const VulnerabilityBreakdown bd = runBreakdownCampaign(
            cfg, inst, TargetStructure::VectorRegisterFile, cc);

        std::cout << strprintf(
            "\n%s on %s, register file, %u injections, AVF %.1f%%\n",
            name.c_str(), cfg.name.c_str(), bd.overall.total(),
            100.0 * bd.overall.avf());

        TextTable bits({"bit group", "injections", "masked", "SDC", "DUE",
                        "AVF"});
        const struct
        {
            const char* label;
            unsigned lo, hi;
        } groups[] = {
            {"bits 0-7   (low mantissa)", 0, 7},
            {"bits 8-15", 8, 15},
            {"bits 16-22 (high mantissa)", 16, 22},
            {"bits 23-30 (exponent)", 23, 30},
            {"bit  31    (sign)", 31, 31},
        };
        for (const auto& g : groups) {
            OutcomeBucket agg;
            for (unsigned b = g.lo; b <= g.hi; ++b) {
                agg.masked += bd.byBit[b].masked;
                agg.sdc += bd.byBit[b].sdc;
                agg.due += bd.byBit[b].due;
            }
            bits.addRow({g.label, strprintf("%u", agg.total()),
                         strprintf("%u", agg.masked),
                         strprintf("%u", agg.sdc),
                         strprintf("%u", agg.due),
                         strprintf("%.1f%%", 100.0 * agg.avf())});
        }
        bits.render(std::cout);

        TextTable phases({"run phase", "injections", "AVF"});
        for (std::size_t q = 0; q < kTimeBuckets; ++q) {
            phases.addRow(
                {strprintf("%zu0%%-%zu0%%", q, q + 1),
                 strprintf("%u", bd.byTime[q].total()),
                 strprintf("%.1f%%", 100.0 * bd.byTime[q].avf())});
        }
        phases.render(std::cout);
    }
    return 0;
}
