/**
 * @file
 * Ablation: ACE accounting modes.
 *
 * Standard ACE (write -> last read, offline knowledge) is what GUFI/SIFI
 * implement; Conservative ACE (write -> next write, no future knowledge)
 * is the classic hardware-feasible upper bound.  The gap between them —
 * and between each and FI — quantifies how much of the paper's reported
 * ACE overestimate is methodological slack.
 */

#include <iostream>

#include "common/string_utils.hh"
#include "common/table.hh"
#include "core/bench_cli.hh"
#include "reliability/ace.hh"
#include "reliability/campaign.hh"
#include "workloads/workloads.hh"

int
main(int argc, char** argv)
{
    using namespace gpr;

    BenchCli cli;
    if (!cli.parse(argc, argv))
        return 1;
    if (cli.rejectMetaActions("bench_ablation_ace_mode"))
        return 2;
    cli.printHeader(std::cout,
                    "Ablation - ACE accounting mode (GTX 480)");

    const GpuConfig& cfg = gpuConfig(GpuModel::GeforceGtx480);

    TextTable table({"benchmark", "structure", "AVF-FI", "ACE standard",
                     "ACE conservative"});

    // Default to a representative subset (the full set is available via
    // --workloads=...); matrixMul dominates runtime otherwise.
    std::vector<std::string> names = cli.spec.workloads;
    if (names.empty())
        names = {"vectoradd", "reduction", "scan", "kmeans", "histogram"};

    for (const std::string& name : names) {
        const auto workload = makeWorkload(name);
        const WorkloadInstance inst = workload->build(cfg.dialect, {});
        const AceResult standard =
            runAceAnalysis(cfg, inst, AceMode::Standard);
        const AceResult conservative =
            runAceAnalysis(cfg, inst, AceMode::Conservative);

        auto row = [&](TargetStructure s, const char* label) {
            double fi = 0.0;
            if (!cli.spec.aceOnly) {
                CampaignConfig cc;
                cc.plan = cli.spec.plan;
                cc.seed = cli.spec.seed;
                fi = runCampaign(cfg, inst, s, cc).avf();
            }
            table.addRow(
                {name, label, strprintf("%.1f%%", 100.0 * fi),
                 strprintf("%.1f%%", 100.0 * standard.forStructure(s).avf()),
                 strprintf("%.1f%%",
                           100.0 * conservative.forStructure(s).avf())});
        };
        row(TargetStructure::VectorRegisterFile, "register file");
        if (workload->usesLocalMemory())
            row(TargetStructure::SharedMemory, "local memory");
    }
    table.render(std::cout);
    if (cli.csv)
        table.renderCsv(std::cout);
    return 0;
}
