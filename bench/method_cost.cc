/**
 * @file
 * google-benchmark microbenchmarks of the analysis machinery itself:
 * simulator throughput per GPU model, the cost of a single fault-injection
 * run, and the cost of a full ACE analysis.  Quantifies the paper's
 * "significant gain in the required simulation time" claim for ACE vs FI:
 * one ACE pass replaces a 2,000-run campaign.
 */

#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "arch/gpu_config.hh"
#include "common/random.hh"
#include "core/orchestrator.hh"
#include "reliability/ace.hh"
#include "reliability/fault_injector.hh"
#include "sim/gpu.hh"
#include "workloads/workloads.hh"

namespace {

using namespace gpr;

const WorkloadInstance&
cachedInstance(GpuModel model, const char* workload)
{
    // One instance per (model, workload); benchmarks only read it.
    // gpr:guarded_by(single-threaded: bench main thread only)
    static std::map<std::pair<GpuModel, std::string>, WorkloadInstance>
        cache;
    const auto key = std::make_pair(model, std::string(workload));
    auto it = cache.find(key);
    if (it == cache.end()) {
        const auto wl = makeWorkload(workload);
        it = cache.emplace(key, wl->build(gpuConfig(model).dialect, {}))
                 .first;
    }
    return it->second;
}

void
BM_GoldenRun(benchmark::State& state, GpuModel model, const char* workload)
{
    const GpuConfig& cfg = gpuConfig(model);
    const WorkloadInstance& inst = cachedInstance(model, workload);
    Gpu gpu(cfg);
    std::uint64_t instructions = 0;
    for (auto _ : state) {
        RunResult r = gpu.run(inst.program, inst.launch, inst.image);
        benchmark::DoNotOptimize(r.stats.cycles);
        instructions += r.stats.warpInstructions;
    }
    state.counters["warp_inst_per_s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

void
BM_SingleInjection(benchmark::State& state, GpuModel model,
                   const char* workload)
{
    const GpuConfig& cfg = gpuConfig(model);
    const WorkloadInstance& inst = cachedInstance(model, workload);
    FaultInjector injector(cfg, inst);
    injector.goldenRun();
    std::uint64_t i = 0;
    for (auto _ : state) {
        Rng rng(deriveSeed(0xBE7C4, i++));
        const InjectionResult r = injector.injectRandom(
            TargetStructure::VectorRegisterFile, rng);
        benchmark::DoNotOptimize(r.outcome);
    }
}

void
BM_AceAnalysis(benchmark::State& state, GpuModel model,
               const char* workload)
{
    const GpuConfig& cfg = gpuConfig(model);
    const WorkloadInstance& inst = cachedInstance(model, workload);
    for (auto _ : state) {
        const AceResult r = runAceAnalysis(cfg, inst);
        benchmark::DoNotOptimize(
            r.forStructure(TargetStructure::VectorRegisterFile)
                .aceUnitCycles);
    }
}

void
BM_OrchestratedStudy(benchmark::State& state)
{
    // A mini grid through the sharded orchestrator: quantifies the
    // scaling of the full-study path (golden-run cache + one global
    // worker pool) as the job count grows.
    const StudySpec spec =
        StudySpecBuilder()
            .workloads({"vectoradd", "reduction"})
            .gpus({GpuModel::QuadroFx5600, GpuModel::GeforceGtx480})
            .injections(60)
            .jobs(static_cast<unsigned>(state.range(0)))
            .shardsPerCampaign(4)
            .verbose(false)
            .build();

    std::size_t shards = 0;
    for (auto _ : state) {
        StudyProgress progress;
        const StudyResult r = runStudy(spec, &progress);
        benchmark::DoNotOptimize(
            r.reports.front()
                .forStructure(TargetStructure::VectorRegisterFile)
                .avfFi);
        shards = progress.totalShards;
    }
    state.counters["shards"] =
        benchmark::Counter(static_cast<double>(shards));
}

void
registerAll()
{
    static const struct
    {
        GpuModel model;
        const char* tag;
    } gpus[] = {
        {GpuModel::HdRadeon7970, "7970"},
        {GpuModel::QuadroFx5600, "fx5600"},
        {GpuModel::QuadroFx5800, "fx5800"},
        {GpuModel::GeforceGtx480, "gtx480"},
    };
    for (const auto& g : gpus) {
        for (const char* wl : {"vectoradd", "reduction"}) {
            benchmark::RegisterBenchmark(
                (std::string("golden_run/") + g.tag + "/" + wl).c_str(),
                [g, wl](benchmark::State& s) { BM_GoldenRun(s, g.model, wl); })
                ->Unit(benchmark::kMillisecond);
            benchmark::RegisterBenchmark(
                (std::string("fi_single_injection/") + g.tag + "/" + wl).c_str(),
                [g, wl](benchmark::State& s) {
                    BM_SingleInjection(s, g.model, wl);
                })
                ->Unit(benchmark::kMillisecond);
            benchmark::RegisterBenchmark(
                (std::string("ace_analysis/") + g.tag + "/" + wl).c_str(),
                [g, wl](benchmark::State& s) {
                    BM_AceAnalysis(s, g.model, wl);
                })
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::RegisterBenchmark("orchestrated_study/jobs",
                                 BM_OrchestratedStudy)
        ->Arg(1)
        ->Arg(4)
        ->Arg(8)
        ->Unit(benchmark::kMillisecond);
}

} // namespace

int
main(int argc, char** argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
