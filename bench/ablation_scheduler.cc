/**
 * @file
 * Ablation: effect of the warp scheduling policy on performance and on
 * register-file AVF (the paper lists "execution scheduling" among the
 * aspects its full-scale study covers).
 *
 * Runs each benchmark on a Fermi-class device under loose round-robin vs
 * greedy-then-oldest scheduling and reports cycles, IPC and AVF.
 */

#include <iostream>

#include "common/string_utils.hh"
#include "common/table.hh"
#include "core/bench_cli.hh"
#include "reliability/ace.hh"
#include "reliability/campaign.hh"
#include "workloads/workloads.hh"

int
main(int argc, char** argv)
{
    using namespace gpr;

    BenchCli cli;
    if (!cli.parse(argc, argv))
        return 1;
    if (cli.rejectMetaActions("bench_ablation_scheduler"))
        return 2;
    cli.printHeader(std::cout,
                    "Ablation - warp scheduler (RR vs GTO on Fermi)");

    // Config copies with only the scheduler changed.
    GpuConfig rr = gpuConfig(GpuModel::GeforceGtx480);
    rr.scheduler = SchedulerKind::RoundRobin;
    GpuConfig gto = gpuConfig(GpuModel::GeforceGtx480);
    gto.scheduler = SchedulerKind::GreedyThenOldest;

    TextTable table({"benchmark", "scheduler", "cycles", "IPC", "RF AVF-FI",
                     "RF AVF-ACE"});

    // Default to a representative subset (the full set is available via
    // --workloads=...); matrixMul dominates runtime otherwise.
    std::vector<std::string> names = cli.spec.workloads;
    if (names.empty())
        names = {"vectoradd", "reduction", "scan", "kmeans", "histogram"};

    for (const std::string& name : names) {
        const auto workload = makeWorkload(name);
        for (const auto* cfg : {&rr, &gto}) {
            const WorkloadInstance inst =
                workload->build(cfg->dialect, {});
            const AceResult ace = runAceAnalysis(*cfg, inst);

            const AceStructureResult& rf_ace =
                ace.forStructure(TargetStructure::VectorRegisterFile);
            double avf_fi = 0.0;
            if (!cli.spec.aceOnly) {
                CampaignConfig cc;
                cc.plan = cli.spec.plan;
                cc.seed = cli.spec.seed;
                const CampaignResult fi = runCampaign(
                    *cfg, inst, TargetStructure::VectorRegisterFile, cc);
                avf_fi = fi.avf();
            }

            table.addRow(
                {name,
                 cfg->scheduler == SchedulerKind::RoundRobin ? "RR" : "GTO",
                 strprintf("%llu", static_cast<unsigned long long>(
                                       ace.goldenStats.cycles)),
                 strprintf("%.2f", ace.goldenStats.ipc()),
                 strprintf("%.1f%%", 100.0 * avf_fi),
                 strprintf("%.1f%%", 100.0 * rf_ace.avf())});
        }
    }
    table.render(std::cout);
    if (cli.csv)
        table.renderCsv(std::cout);
    return 0;
}
