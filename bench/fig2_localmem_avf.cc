/**
 * @file
 * Reproduces Fig. 2 of the paper: local (shared) memory AVF for the seven
 * benchmarks that use it — backprop, dwtHaar1D, histogram, matrixMul,
 * reduction, scan, transpose — on all four GPUs, by FI and by ACE, with
 * the structure occupancy alongside.
 *
 * Expected shape (paper findings):
 *  - no clean cross-GPU trend (case-by-case analysis needed);
 *  - AVF-ACE is very close to AVF-FI for this structure (unlike the
 *    register file), so ACE can replace long FI campaigns here;
 *  - occupancy correlates strongly with AVF.
 */

#include <iostream>

#include "core/bench_cli.hh"
#include "core/export.hh"
#include "workloads/workloads.hh"

int
main(int argc, char** argv)
{
    gpr::BenchCli cli;
    if (!cli.parse(argc, argv))
        return 1;

    // Restrict to the Fig. 2 benchmark set unless overridden.
    if (cli.spec.workloads.empty()) {
        for (auto name : gpr::localMemoryWorkloadNames())
            cli.spec.workloads.emplace_back(name);
    }
    if (cli.runMetaActions(std::cout))
        return 0;

    if (!cli.json) {
        cli.printHeader(
            std::cout,
            "Fig. 2 - AVF for Local Memory (FI + ACE + occupancy)");
    }

    const gpr::StudyResult study = gpr::runStudy(cli.spec);
    if (cli.printStudyJson(std::cout, study))
        return 0;
    const gpr::TextTable table = study.figure2();
    table.render(std::cout);
    if (cli.csv)
        table.renderCsv(std::cout);
    study.printClaims(std::cout);
    return 0;
}
