/**
 * @file
 * Reproduces Fig. 1 of the paper: register-file AVF for all ten
 * benchmarks on all four GPUs, measured both by statistical fault
 * injection (AVF-FI) and by ACE analysis (AVF-ACE), with the occupancy
 * of the structure alongside (the figure's red line).
 *
 * Expected shape (paper findings):
 *  - AVF varies strongly across benchmarks and across GPUs;
 *  - AVF-ACE >= AVF-FI, with a significant overestimate for this
 *    structure;
 *  - occupancy correlates strongly with AVF.
 *
 * Run with --injections=2000 to match the paper's sampling plan exactly.
 */

#include <iostream>

#include "core/bench_cli.hh"
#include "core/export.hh"

int
main(int argc, char** argv)
{
    gpr::BenchCli cli;
    if (!cli.parse(argc, argv))
        return 1;
    if (cli.runMetaActions(std::cout))
        return 0;

    if (!cli.json) {
        cli.printHeader(
            std::cout,
            "Fig. 1 - AVF for Register File (FI + ACE + occupancy)");
    }

    const gpr::StudyResult study = gpr::runStudy(cli.spec);
    if (cli.printStudyJson(std::cout, study))
        return 0;
    const gpr::TextTable table = study.figure1();
    table.render(std::cout);
    if (cli.csv)
        table.renderCsv(std::cout);
    study.printClaims(std::cout);
    return 0;
}
