/**
 * @file
 * Adaptive-sampling benchmark: the sequential early-stopping engine vs
 * the exhaustive fixed-N plan at equal (margin, confidence), over the
 * paper's (workload, GPU, structure) grid.
 *
 * Both studies share seeds, so every adaptive campaign is literally a
 * prefix of the corresponding fixed campaign's injection sequence.  The
 * run doubles as a statistical acceptance check, per campaign and per
 * rate (AVF, SDC, DUE):
 *
 *  - the exhaustive fixed-N estimate must lie inside the adaptive
 *    campaign's *reported* interval — the honesty guarantee: adaptive
 *    uncertainty always covers the ground truth it stopped short of;
 *  - the two runs' intervals must overlap (statistical compatibility).
 *
 * (The reverse containment — adaptive point estimate inside the fixed
 * run's much tighter interval — is reported per row but not gated: a
 * low-rate campaign that legitimately observes zero failures in its
 * prefix cannot be inside a fixed interval that excludes zero.)
 * Any gated violation fails the process.  Results are emitted as one
 * BENCH JSON document on stdout; the `reduction` field is the
 * grid-total injection saving at equal (margin, confidence).
 *
 *     $ bench_adaptive_sampling [--workloads=a,b] [--gpus=a,b]
 *           [--structures=a,b] [--margin=M] [--confidence=C]
 *           [--max-injections=N] [--seed=S] [--jobs=N]
 *
 * Defaults: the full paper grid at margin 5 %, the spec's default 99 %
 * confidence (fixed-N equivalent: requiredSamples(0.05, 0.99) = 664
 * injections per campaign).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/bench_cli.hh"
#include "core/comparison.hh"
#include "core/orchestrator.hh"
#include "sim/structure_registry.hh"

namespace {

using namespace gpr;

struct CampaignRow
{
    std::string workload;
    std::string gpu;
    std::string structure;
    std::size_t fixedN = 0;
    std::size_t adaptiveN = 0;
    double fixedAvf = 0.0;
    double adaptiveAvf = 0.0;
    double fixedLo = 0.0;
    double fixedHi = 0.0;
    double adaptiveLo = 0.0;
    double adaptiveHi = 0.0;
    double achievedMargin = 0.0;
    /** Gated: exhaustive estimates inside the adaptive intervals. */
    bool truthInsideAdaptive = true;
    /** Gated: the two runs' intervals overlap, rate by rate. */
    bool ciOverlap = true;
    /** Informational only (fails legitimately for low-rate cells). */
    bool adaptiveInsideFixed = true;
};

bool
inside(double value, const Interval& iv)
{
    return value >= iv.lo && value <= iv.hi;
}

bool
overlap(const Interval& a, const Interval& b)
{
    return std::max(a.lo, b.lo) <= std::min(a.hi, b.hi);
}

} // namespace

int
main(int argc, char** argv)
{
    BenchCli cli;
    if (!cli.parse(argc, argv))
        return 2;
    if (cli.rejectMetaActions("bench_adaptive_sampling"))
        return 2;
    if (!cli.spec.plan.adaptive())
        cli.spec.plan.margin = 0.05;
    cli.spec.verbose = false;
    cli.spec.storePath.clear();
    cli.spec.resume = false;

    StudySpec adaptive = cli.spec;
    StudySpec fixed = cli.spec;
    fixed.plan.margin = 0.0;
    fixed.plan.maxInjections = 0;
    fixed.plan.injections = adaptive.plan.resolvedMaxInjections();

    std::fprintf(stderr,
                 "adaptive_sampling: margin %.2f%%, confidence %.0f%%, "
                 "fixed-N equivalent %zu injections/campaign\n",
                 100.0 * adaptive.plan.margin,
                 100.0 * adaptive.plan.confidence,
                 fixed.plan.injections);

    StudyProgress fixed_progress;
    const StudyResult fixed_result = runStudy(fixed, &fixed_progress);
    StudyProgress adaptive_progress;
    const StudyResult adaptive_result =
        runStudy(adaptive, &adaptive_progress);

    std::vector<CampaignRow> rows;
    std::uint64_t fixed_total = 0, adaptive_total = 0;
    bool all_compatible = true;
    std::size_t adaptive_inside_fixed = 0;
    for (std::size_t i = 0; i < fixed_result.reports.size(); ++i) {
        const ReliabilityReport& fr = fixed_result.reports[i];
        const ReliabilityReport& ar = adaptive_result.reports[i];
        for (const StructureSpec& sspec : structureRegistry()) {
            const StructureReport& fs = fr.forStructure(sspec.id);
            const StructureReport& as = ar.forStructure(sspec.id);
            if (!fs.injections)
                continue;
            CampaignRow row;
            row.workload = fr.workload;
            row.gpu = std::string(gpuShortName(fr.gpu));
            row.structure = std::string(sspec.shortName);
            row.fixedN = fs.injections;
            row.adaptiveN = as.injections;
            row.fixedAvf = fs.avfFi;
            row.adaptiveAvf = as.avfFi;
            row.fixedLo = fs.avfCi.lo;
            row.fixedHi = fs.avfCi.hi;
            row.adaptiveLo = as.avfCi.lo;
            row.adaptiveHi = as.avfCi.hi;
            row.achievedMargin = as.achievedMargin;
            row.truthInsideAdaptive = inside(fs.avfFi, as.avfCi) &&
                                      inside(fs.sdcRate, as.sdcCi) &&
                                      inside(fs.dueRate, as.dueCi);
            row.ciOverlap = overlap(fs.avfCi, as.avfCi) &&
                            overlap(fs.sdcCi, as.sdcCi) &&
                            overlap(fs.dueCi, as.dueCi);
            row.adaptiveInsideFixed = inside(as.avfFi, fs.avfCi) &&
                                      inside(as.sdcRate, fs.sdcCi) &&
                                      inside(as.dueRate, fs.dueCi);
            all_compatible = all_compatible && row.truthInsideAdaptive &&
                             row.ciOverlap;
            adaptive_inside_fixed += row.adaptiveInsideFixed ? 1 : 0;
            fixed_total += fs.injections;
            adaptive_total += as.injections;
            rows.push_back(std::move(row));
        }
    }

    const double reduction =
        adaptive_total
            ? static_cast<double>(fixed_total) /
                  static_cast<double>(adaptive_total)
            : 0.0;

    // ---- BENCH JSON ----
    std::printf("{\n  \"bench\": \"adaptive_sampling\",\n");
    std::printf("  \"margin\": %.6f,\n", adaptive.plan.margin);
    std::printf("  \"confidence\": %.6f,\n", adaptive.plan.confidence);
    std::printf("  \"fixed_n_per_campaign\": %zu,\n",
                fixed.plan.injections);
    std::printf("  \"campaigns\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const CampaignRow& r = rows[i];
        std::printf(
            "    {\"workload\": \"%s\", \"gpu\": \"%s\", "
            "\"structure\": \"%s\", \"fixed_n\": %zu, "
            "\"adaptive_n\": %zu, \"fixed_avf\": %.6f, "
            "\"adaptive_avf\": %.6f, \"fixed_ci_lo\": %.6f, "
            "\"fixed_ci_hi\": %.6f, \"adaptive_ci_lo\": %.6f, "
            "\"adaptive_ci_hi\": %.6f, \"achieved_margin\": %.6f, "
            "\"truth_inside_adaptive_ci\": %s, \"ci_overlap\": %s, "
            "\"adaptive_inside_fixed_ci\": %s}%s\n",
            r.workload.c_str(), r.gpu.c_str(), r.structure.c_str(),
            r.fixedN, r.adaptiveN, r.fixedAvf, r.adaptiveAvf, r.fixedLo,
            r.fixedHi, r.adaptiveLo, r.adaptiveHi, r.achievedMargin,
            r.truthInsideAdaptive ? "true" : "false",
            r.ciOverlap ? "true" : "false",
            r.adaptiveInsideFixed ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"aggregate\": {\n");
    std::printf("    \"campaigns\": %zu,\n", rows.size());
    std::printf("    \"fixed_injections\": %llu,\n",
                static_cast<unsigned long long>(fixed_total));
    std::printf("    \"adaptive_injections\": %llu,\n",
                static_cast<unsigned long long>(adaptive_total));
    std::printf("    \"pruned_shards\": %zu,\n",
                adaptive_progress.prunedShards);
    std::printf("    \"fixed_wall_s\": %.3f,\n",
                fixed_progress.wallSeconds);
    std::printf("    \"adaptive_wall_s\": %.3f,\n",
                adaptive_progress.wallSeconds);
    std::printf("    \"reduction\": %.3f,\n", reduction);
    std::printf("    \"adaptive_inside_fixed_count\": %zu,\n",
                adaptive_inside_fixed);
    std::printf("    \"all_estimates_compatible\": %s\n",
                all_compatible ? "true" : "false");
    std::printf("  }\n}\n");

    if (!all_compatible) {
        std::fprintf(stderr,
                     "FAIL: an exhaustive estimate fell outside the "
                     "adaptive campaign's reported interval (or the "
                     "intervals do not overlap)\n");
        return 1;
    }
    return 0;
}
