/**
 * @file
 * Injection-throughput benchmark: legacy from-scratch engine vs the
 * checkpoint-restore + early-termination engine, over the paper's
 * (workload, GPU, structure) grid.
 *
 * Every cell runs the *same* deterministically derived fault list
 * through both engines, so the run doubles as a differential check:
 * any per-injection outcome mismatch flags the cell (and fails the
 * process).  Results are emitted as one BENCH JSON document on stdout
 * (CI parses it and fails if the checkpointed engine is slower); a
 * human-readable per-phase table goes to stderr so stdout stays pure
 * JSON.
 *
 *     $ bench_injection_throughput [--workloads=a,b] [--gpus=a,b]
 *           [--structures=a,b] [--behaviors=a,b] [--injections=N]
 *           [--checkpoints=N] [--placement=even|fault-aware] [--seed=S]
 *
 * By default every registered structure applicable to a cell is run
 * (including the control-state targets, which skip the dead-window
 * prefilter); --structures restricts to a registry subset, e.g. the
 * paper's original rf,lds,srf grid for the CI perf gate.
 *
 * --behaviors selects the fault-behavior axis (default: all four, so
 * the persistent fast path is exercised out of the box).  Each behavior
 * re-runs every cell's fault list; transient cells use the dead-window
 * prefilter, persistent cells the value-residency prefilter and the
 * residency-gated hash early-out.  Throughput is reported per behavior
 * in the "behaviors" breakdown — together with each prefilter's and the
 * early-out's hit rate — and the legacy-vs-checkpoint equality check
 * doubles as a per-behavior differential test of the fast path.
 *
 * The checkpointed engine's time is further broken down per phase
 * (prefilter / restore / replay / hash, from FaultInjector's phase
 * accounting), and each (workload, GPU) pair reports its resident
 * checkpoint-pack bytes: the delta-encoded size next to what the same
 * checkpoint cycles would cost as v1 full snapshots.
 */

// gpr:lint-allow-file(D1): timing whitelist — this is a throughput
// benchmark; clock reads are its output, and the differential outcome
// check compares counts that never depend on them.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/string_utils.hh"
#include "core/study_spec.hh"
#include "reliability/campaign.hh"
#include "reliability/fault_injector.hh"
#include "sim/structure_registry.hh"
#include "workloads/workloads.hh"

namespace {

using namespace gpr;

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

struct CellResult
{
    std::string workload;
    std::string gpu;
    std::string structure;
    FaultBehavior behavior = FaultBehavior::Transient;
    std::size_t injections = 0;
    std::size_t prefiltered = 0; ///< masked via dead windows (no sim)
    /** Masked via the persistent value-residency prefilter (no sim). */
    std::size_t residencyPrefiltered = 0;
    std::size_t hashConverged = 0;
    double goldenSeconds = 0.0; ///< one golden run (scale reference)
    double packSeconds = 0.0;   ///< recording passes + pack assembly
    double packShare = 0.0;     ///< this cell's share of packSeconds
    double legacySeconds = 0.0;
    double checkpointSeconds = 0.0;
    /** Where checkpointSeconds went (per-injector phase accounting). */
    InjectionPhaseStats phases;
    std::size_t packBytes = 0;     ///< resident delta-encoded pack
    std::size_t packFullBytes = 0; ///< same cycles as v1 full snapshots
    bool outcomesEqual = true;
};

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> workloads;
    for (auto name : allWorkloadNames())
        workloads.emplace_back(name);
    std::vector<GpuModel> gpus = allGpuModels();
    std::vector<TargetStructure> requested;
    std::vector<FaultBehavior> behaviors = {
        FaultBehavior::Transient, FaultBehavior::StuckAt0,
        FaultBehavior::StuckAt1, FaultBehavior::Intermittent};
    std::size_t injections = 40;
    unsigned checkpoints = kDefaultCheckpoints;
    CheckpointPlacement placement = CheckpointPlacement::FaultAware;
    std::uint64_t seed = 0xC0FFEE;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (startsWith(arg, "--workloads=")) {
            workloads = parseWorkloadList(
                arg.substr(std::string("--workloads=").size()));
        } else if (startsWith(arg, "--gpus=")) {
            gpus = parseGpuList(
                arg.substr(std::string("--gpus=").size()));
        } else if (startsWith(arg, "--structures=")) {
            requested = parseStructureList(
                arg.substr(std::string("--structures=").size()));
        } else if (startsWith(arg, "--behaviors=")) {
            behaviors.clear();
            for (const std::string& name : split(
                     arg.substr(std::string("--behaviors=").size()), ',')) {
                behaviors.push_back(faultBehaviorFromName(name));
            }
            if (behaviors.empty()) {
                std::fprintf(stderr, "--behaviors: empty list\n");
                return 2;
            }
        } else if (startsWith(arg, "--injections=")) {
            const auto n =
                parseInt(arg.substr(std::string("--injections=").size()));
            if (n && *n > 0)
                injections = static_cast<std::size_t>(*n);
        } else if (startsWith(arg, "--checkpoints=")) {
            const auto n =
                parseInt(arg.substr(std::string("--checkpoints=").size()));
            if (n && *n >= 0)
                checkpoints = static_cast<unsigned>(*n);
        } else if (startsWith(arg, "--placement=")) {
            const std::string name =
                arg.substr(std::string("--placement=").size());
            if (name == "even") {
                placement = CheckpointPlacement::Even;
            } else if (name == "fault-aware") {
                placement = CheckpointPlacement::FaultAware;
            } else {
                std::fprintf(stderr,
                             "--placement: expected even|fault-aware\n");
                return 2;
            }
        } else if (startsWith(arg, "--seed=")) {
            const auto s =
                parseInt(arg.substr(std::string("--seed=").size()));
            if (s)
                seed = static_cast<std::uint64_t>(*s);
        } else {
            std::fprintf(stderr,
                         "usage: bench_injection_throughput "
                         "[--workloads=a,b] [--gpus=a,b] "
                         "[--structures=a,b] [--behaviors=a,b] "
                         "[--injections=N] [--checkpoints=N] "
                         "[--placement=even|fault-aware] [--seed=S]\n");
            return 2;
        }
    }

    std::vector<CellResult> cells;
    bool all_equal = true;
    double legacy_total = 0.0, ckpt_total = 0.0;
    std::size_t injections_total = 0;
    std::size_t peak_pack_bytes = 0, peak_pack_full_bytes = 0;

    for (const std::string& wname : workloads) {
        const auto workload = makeWorkload(wname);
        for (GpuModel model : gpus) {
            const GpuConfig& cfg = gpuConfig(model);
            const WorkloadInstance inst = workload->build(cfg.dialect, {});

            const std::vector<TargetStructure> structures =
                selectStructures(cfg, workload->usesLocalMemory(),
                                 requested);
            if (structures.empty())
                continue;

            // Legacy engine: golden + from-scratch injections.
            FaultInjector legacy(cfg, inst);
            auto t0 = std::chrono::steady_clock::now();
            legacy.goldenRun();
            auto t1 = std::chrono::steady_clock::now();
            const double golden_s = seconds(t0, t1);

            // Checkpointed engine: same golden, plus the pack.
            FaultInjector ckpt(cfg, inst);
            ckpt.adoptGoldenCycles(legacy.goldenCycles());
            t0 = std::chrono::steady_clock::now();
            const auto pack = ckpt.buildCheckpointPack(checkpoints,
                                                       placement);
            t1 = std::chrono::steady_clock::now();
            const double pack_s = seconds(t0, t1);
            peak_pack_bytes =
                std::max(peak_pack_bytes, pack->approxBytes());
            peak_pack_full_bytes = std::max(peak_pack_full_bytes,
                                            pack->fullEquivalentBytes());

            for (TargetStructure s : structures) {
                for (FaultBehavior behavior : behaviors) {
                    CellResult cell;
                    cell.workload = wname;
                    cell.gpu = cfg.name;
                    cell.structure = std::string(targetStructureName(s));
                    cell.behavior = behavior;
                    cell.injections = injections;
                    cell.goldenSeconds = golden_s;
                    cell.packSeconds = pack_s;
                    cell.packBytes = pack->approxBytes();
                    cell.packFullBytes = pack->fullEquivalentBytes();

                    // Same cell seed across behaviors: each behavior
                    // re-runs the same bit/cycle fault list (the
                    // intermittent duty-cycle draws come strictly
                    // after, so they don't perturb the list).
                    const std::uint64_t cseed =
                        deriveSeed(seed, static_cast<std::uint64_t>(s));
                    const FaultShape shape{behavior,
                                           FaultPattern::SingleBit};

                    std::vector<InjectionResult> legacy_results;
                    legacy_results.reserve(injections);
                    t0 = std::chrono::steady_clock::now();
                    for (std::size_t i = 0; i < injections; ++i) {
                        legacy_results.push_back(runIndexedInjection(
                            legacy, s, cseed, i, shape));
                    }
                    t1 = std::chrono::steady_clock::now();
                    cell.legacySeconds = seconds(t0, t1);

                    ckpt.resetPhaseStats();
                    t0 = std::chrono::steady_clock::now();
                    for (std::size_t i = 0; i < injections; ++i) {
                        const InjectionResult r = runIndexedInjection(
                            ckpt, s, cseed, i, shape);
                        if (r.shortcut == InjectionShortcut::DeadWindow)
                            ++cell.prefiltered;
                        else if (r.shortcut ==
                                 InjectionShortcut::ValueResidency)
                            ++cell.residencyPrefiltered;
                        else if (r.shortcut ==
                                 InjectionShortcut::HashConvergence)
                            ++cell.hashConverged;
                        if (r.outcome != legacy_results[i].outcome ||
                            r.trap != legacy_results[i].trap) {
                            cell.outcomesEqual = false;
                        }
                    }
                    t1 = std::chrono::steady_clock::now();
                    cell.checkpointSeconds = seconds(t0, t1);
                    cell.phases = ckpt.phaseStats();

                    cell.packShare =
                        cell.packSeconds /
                        static_cast<double>(structures.size() *
                                            behaviors.size());
                    all_equal = all_equal && cell.outcomesEqual;
                    legacy_total += cell.legacySeconds;
                    ckpt_total += cell.checkpointSeconds + cell.packShare;
                    injections_total += injections;
                    cells.push_back(std::move(cell));
                }
            }
        }
    }

    InjectionPhaseStats phases_total;
    for (const CellResult& c : cells)
        phases_total += c.phases;

    // ---- BENCH JSON ----
    std::printf("{\n  \"bench\": \"injection_throughput\",\n");
    std::printf("  \"checkpoints\": %u,\n", checkpoints);
    std::printf("  \"placement\": \"%s\",\n",
                std::string(checkpointPlacementName(placement)).c_str());
    std::printf("  \"injections_per_cell\": %zu,\n", injections);
    std::printf("  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellResult& c = cells[i];
        // Per-cell speedup uses the same basis as the aggregate: the
        // cell's share of the pack-recording cost is charged to the
        // checkpointed engine (packShare below), so a cell can never
        // look like a win while being a net slowdown.
        const double ckpt_total_s = c.checkpointSeconds + c.packShare;
        std::printf(
            "    {\"workload\": \"%s\", \"gpu\": \"%s\", "
            "\"structure\": \"%s\", \"behavior\": \"%s\", "
            "\"injections\": %zu, "
            "\"prefiltered\": %zu, \"residency_prefiltered\": %zu, "
            "\"hash_converged\": %zu, "
            "\"golden_s\": %.6f, \"pack_s\": %.6f, "
            "\"pack_share_s\": %.6f, "
            "\"legacy_s\": %.6f, \"checkpoint_s\": %.6f, "
            "\"prefilter_s\": %.6f, \"restore_s\": %.6f, "
            "\"replay_s\": %.6f, \"hash_s\": %.6f, "
            "\"pack_bytes\": %zu, \"pack_full_bytes\": %zu, "
            "\"legacy_ips\": %.2f, \"checkpoint_ips\": %.2f, "
            "\"speedup\": %.3f, \"outcomes_equal\": %s}%s\n",
            c.workload.c_str(), c.gpu.c_str(), c.structure.c_str(),
            std::string(faultBehaviorName(c.behavior)).c_str(),
            c.injections, c.prefiltered, c.residencyPrefiltered,
            c.hashConverged, c.goldenSeconds,
            c.packSeconds, c.packShare, c.legacySeconds,
            c.checkpointSeconds, c.phases.prefilterSeconds,
            c.phases.restoreSeconds, c.phases.replaySeconds,
            c.phases.hashSeconds, c.packBytes, c.packFullBytes,
            c.legacySeconds > 0 ? c.injections / c.legacySeconds : 0.0,
            ckpt_total_s > 0 ? c.injections / ckpt_total_s : 0.0,
            ckpt_total_s > 0 ? c.legacySeconds / ckpt_total_s : 0.0,
            c.outcomesEqual ? "true" : "false",
            i + 1 < cells.size() ? "," : "");
    }
    std::printf("  ],\n");

    // Per-behavior aggregate with each fast path's hit rates: transient
    // quotes the dead-window prefilter, persistent behaviors the
    // value-residency prefilter; the hash early-out applies to both.
    std::printf("  \"behaviors\": [\n");
    for (std::size_t b = 0; b < behaviors.size(); ++b) {
        double legacy_b = 0.0, ckpt_b = 0.0;
        std::size_t injections_b = 0;
        InjectionPhaseStats phases_b;
        for (const CellResult& c : cells) {
            if (c.behavior != behaviors[b])
                continue;
            legacy_b += c.legacySeconds;
            ckpt_b += c.checkpointSeconds + c.packShare;
            injections_b += c.injections;
            phases_b += c.phases;
        }
        const double denom =
            injections_b > 0 ? static_cast<double>(injections_b) : 1.0;
        std::printf(
            "    {\"behavior\": \"%s\", \"injections\": %zu, "
            "\"dead_window_hits\": %llu, \"residency_hits\": %llu, "
            "\"hash_converge_hits\": %llu, "
            "\"prefilter_rate\": %.4f, \"early_out_rate\": %.4f, "
            "\"legacy_s\": %.6f, \"checkpoint_s\": %.6f, "
            "\"prefilter_s\": %.6f, \"restore_s\": %.6f, "
            "\"replay_s\": %.6f, \"hash_s\": %.6f, "
            "\"legacy_ips\": %.2f, \"checkpoint_ips\": %.2f, "
            "\"speedup\": %.3f}%s\n",
            std::string(faultBehaviorName(behaviors[b])).c_str(),
            injections_b,
            static_cast<unsigned long long>(phases_b.deadWindowHits),
            static_cast<unsigned long long>(phases_b.residencyHits),
            static_cast<unsigned long long>(phases_b.hashConvergeHits),
            (phases_b.deadWindowHits + phases_b.residencyHits) / denom,
            phases_b.hashConvergeHits / denom, legacy_b, ckpt_b,
            phases_b.prefilterSeconds, phases_b.restoreSeconds,
            phases_b.replaySeconds, phases_b.hashSeconds,
            legacy_b > 0 ? injections_b / legacy_b : 0.0,
            ckpt_b > 0 ? injections_b / ckpt_b : 0.0,
            ckpt_b > 0 ? legacy_b / ckpt_b : 0.0,
            b + 1 < behaviors.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"aggregate\": {\n");
    std::printf("    \"injections\": %zu,\n", injections_total);
    std::printf("    \"legacy_s\": %.6f,\n", legacy_total);
    std::printf("    \"checkpoint_s\": %.6f,\n", ckpt_total);
    std::printf("    \"prefilter_s\": %.6f,\n",
                phases_total.prefilterSeconds);
    std::printf("    \"restore_s\": %.6f,\n", phases_total.restoreSeconds);
    std::printf("    \"replay_s\": %.6f,\n", phases_total.replaySeconds);
    std::printf("    \"hash_s\": %.6f,\n", phases_total.hashSeconds);
    std::printf("    \"peak_pack_bytes\": %zu,\n", peak_pack_bytes);
    std::printf("    \"peak_pack_full_bytes\": %zu,\n",
                peak_pack_full_bytes);
    std::printf("    \"legacy_ips\": %.2f,\n",
                legacy_total > 0 ? injections_total / legacy_total : 0.0);
    std::printf("    \"checkpoint_ips\": %.2f,\n",
                ckpt_total > 0 ? injections_total / ckpt_total : 0.0);
    std::printf("    \"speedup\": %.3f,\n",
                ckpt_total > 0 ? legacy_total / ckpt_total : 0.0);
    std::printf("    \"outcomes_equal\": %s\n", all_equal ? "true" : "false");
    std::printf("  }\n}\n");

    // ---- Per-phase table (stderr; stdout stays pure JSON for CI) ----
    std::fprintf(stderr,
                 "\n%-14s %6s %10s %10s %10s %10s %10s %8s %8s %8s\n",
                 "behavior", "inj", "legacy_s", "prefilt_s", "restore_s",
                 "replay_s", "hash_s", "prefilt%", "earlyout", "speedup");
    for (FaultBehavior behavior : behaviors) {
        double legacy_b = 0.0, ckpt_b = 0.0;
        std::size_t injections_b = 0;
        InjectionPhaseStats phases_b;
        for (const CellResult& c : cells) {
            if (c.behavior != behavior)
                continue;
            legacy_b += c.legacySeconds;
            ckpt_b += c.checkpointSeconds + c.packShare;
            injections_b += c.injections;
            phases_b += c.phases;
        }
        const double denom =
            injections_b > 0 ? static_cast<double>(injections_b) : 1.0;
        std::fprintf(
            stderr,
            "%-14s %6zu %10.3f %10.3f %10.3f %10.3f %10.3f %7.1f%% "
            "%7.1f%% %7.2fx\n",
            std::string(faultBehaviorName(behavior)).c_str(),
            injections_b, legacy_b, phases_b.prefilterSeconds,
            phases_b.restoreSeconds, phases_b.replaySeconds,
            phases_b.hashSeconds,
            100.0 * (phases_b.deadWindowHits + phases_b.residencyHits) /
                denom,
            100.0 * phases_b.hashConvergeHits / denom,
            ckpt_b > 0 ? legacy_b / ckpt_b : 0.0);
    }
    std::fprintf(stderr,
                 "peak checkpoint pack: %zu KiB delta-encoded "
                 "(full-snapshot equivalent %zu KiB, %.1fx smaller)\n",
                 peak_pack_bytes / 1024, peak_pack_full_bytes / 1024,
                 peak_pack_bytes > 0
                     ? static_cast<double>(peak_pack_full_bytes) /
                           static_cast<double>(peak_pack_bytes)
                     : 0.0);

    if (!all_equal) {
        std::fprintf(stderr,
                     "FAIL: checkpointed engine outcomes differ from the "
                     "legacy engine\n");
        return 1;
    }
    return 0;
}
