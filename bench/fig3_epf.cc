/**
 * @file
 * Reproduces Fig. 3 of the paper: Executions-per-Failure (EPF = EIT /
 * FIT_GPU, log scale) for every benchmark x GPU pair, combining the
 * performance of the chip (clock x cycles => executions in 1e9 hours)
 * with its reliability (structure sizes x AVF => failures in 1e9 hours).
 *
 * Expected shape: EPF spans roughly 1e12..1e16 across the grid, with
 * larger/faster-but-bigger-structure chips trading throughput against
 * failure rate differently per benchmark.
 *
 * By default the AVFs feeding FIT come from ACE analysis (deterministic
 * and fast); pass --injections=N (without --ace-only) to use statistical
 * FI AVFs like the paper.
 */

#include <cstring>
#include <iostream>

#include "core/bench_cli.hh"
#include "core/export.hh"

int
main(int argc, char** argv)
{
    gpr::BenchCli cli;
    // ACE-based unless the user explicitly chooses a campaign — either
    // an injection count or a full spec artifact (whose campaign section
    // must be honoured verbatim, ace_only included).
    bool campaign_given = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--injections=", 13) == 0 ||
            std::strncmp(argv[i], "--spec=", 7) == 0) {
            campaign_given = true;
        }
    }
    if (!cli.parse(argc, argv))
        return 1;
    if (!campaign_given)
        cli.spec.aceOnly = true;
    if (cli.runMetaActions(std::cout))
        return 0;

    if (!cli.json) {
        cli.printHeader(std::cout, "Fig. 3 - Executions per Failure (EPF)");
        std::cout << "FIT model: 1000 FIT/Mbit intrinsic SER; structures: "
                     "vector RF + local memory (+ scalar RF on SI)\n";
    }

    const gpr::StudyResult study = gpr::runStudy(cli.spec);
    if (cli.printStudyJson(std::cout, study))
        return 0;
    const gpr::TextTable table = study.figure3();
    table.render(std::cout);
    if (cli.csv)
        table.renderCsv(std::cout);
    return 0;
}
